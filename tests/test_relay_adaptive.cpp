// Adaptive traffic-observing relay adversaries (greedy-skew and budgeted
// search) plus the churn-aware adversary-state fixes that ride with them:
//
//  * the observation interface is deterministic (bit-exact digests) and the
//    winning search schedule replays from its exported seed alone;
//  * the greedy policy is an empirically STRONGER legal adversary than every
//    oblivious kind on the witness cell, yet stays within the Theorem-17
//    bound at (d_eff, u_eff) — the paper's guarantee is adversary-agnostic;
//  * selective-drop masks refresh as a pure function of the epoch graph
//    under churn (the stale-mask regression), custom:target refuses churned
//    targets, and adaptive cells stay byte-identical across the batch
//    toggle, thread counts, and killed-campaign resume.

#include "relay/adversary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "relay/flood_world.hpp"
#include "relay/schedule.hpp"
#include "relay/topology.hpp"
#include "runner/campaign.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "sim/world.hpp"

namespace crusader::runner {
namespace {

constexpr relay::RelayFaultKind kObliviousKinds[] = {
    relay::RelayFaultKind::kCrash, relay::RelayFaultKind::kMaxDelay,
    relay::RelayFaultKind::kReorder, relay::RelayFaultKind::kSelectiveDrop};

/// The witness cell: n = 32 hypercube under Srikanth–Toueg with the
/// deterministic all-max honest delay policy, at the family's survivable
/// fault load. ST realizes its skew through message timing alone, so the
/// two-faced frontier attack has the most surface to bite on.
ScenarioSpec witness_spec(relay::RelayFaultKind fault) {
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.topology = TopologyKind::kHypercube;
  spec.protocol = baselines::ProtocolKind::kSrikanthToueg;
  spec.n = 32;
  spec.f = max_topology_faults(TopologyKind::kHypercube, 32);
  spec.f_actual = spec.f;
  spec.u = 0.05;
  spec.u_tilde = 0.05;
  spec.vartheta = 1.01;
  spec.delay = sim::DelayKind::kMax;
  spec.relay_fault = fault;
  spec.rounds = 10;
  spec.warmup = 3;
  return spec;
}

TEST(AdaptiveObservation, DigestIsDeterministicAndOrderSensitive) {
  const auto topo = relay::Topology::hypercube(3);
  std::vector<bool> faulty(8, false);
  faulty[0] = true;

  relay::RelayAdversary a(relay::RelayFaultKind::kGreedySkew, topo, faulty, 7);
  relay::RelayAdversary b(relay::RelayFaultKind::kGreedySkew, topo, faulty, 7);
  ASSERT_TRUE(a.observing());
  EXPECT_EQ(a.observation_count(), 0u);

  a.observe(1, 10, 1, 2.0);
  a.observe(2, 10, 2, 2.5);
  b.observe(1, 10, 1, 2.0);
  b.observe(2, 10, 2, 2.5);
  EXPECT_EQ(a.observation_count(), 2u);
  EXPECT_EQ(a.observation_digest(), b.observation_digest());

  // The digest is a replay witness: a swapped stream must not alias.
  relay::RelayAdversary c(relay::RelayFaultKind::kGreedySkew, topo, faulty, 7);
  c.observe(2, 10, 2, 2.5);
  c.observe(1, 10, 1, 2.0);
  EXPECT_NE(a.observation_digest(), c.observation_digest());

  // Node 2 arrived half a unit behind the flood's first sighting, node 1 is
  // the leader: greedy slows 2 (full hi) and rushes 1 (lo).
  EXPECT_TRUE(a.forwards(0, 1, 10));
  EXPECT_DOUBLE_EQ(a.hop_delay(0, 1, 10, 0.95, 0.9, 1.0), 0.9);
  EXPECT_DOUBLE_EQ(a.hop_delay(0, 2, 10, 0.95, 0.9, 1.0), 1.0);
  // Node 2 is also the most-lagging observed neighbor — the drop victim.
  EXPECT_FALSE(a.forwards(0, 2, 10));
  // At most one victim: every other neighbor is served.
  std::size_t served = 0;
  for (const NodeId next : topo.neighbors(0))
    if (a.forwards(0, next, 10)) ++served;
  EXPECT_EQ(served, topo.neighbors(0).size() - 1);

  // Oblivious kinds never observe (the hot path pays nothing for them).
  const relay::RelayAdversary oblivious(relay::RelayFaultKind::kMaxDelay, topo,
                                        faulty, 7);
  EXPECT_FALSE(oblivious.observing());
  // A searched candidate (non-zero attack seed) is schedule-driven, not
  // observation-driven.
  const relay::RelayAdversary searched(relay::RelayFaultKind::kSearch, topo,
                                       faulty, 7, /*attack_seed=*/99);
  EXPECT_FALSE(searched.observing());
  const relay::RelayAdversary baseline(relay::RelayFaultKind::kSearch, topo,
                                       faulty, 7, /*attack_seed=*/0);
  EXPECT_TRUE(baseline.observing());
}

TEST(AdaptiveObservation, CoreObservationLogMirrorsRelaySemantics) {
  core::ObservationLog log(4);
  core::ObservationLog twin(4);
  ASSERT_TRUE(log.lagging(1)) << "unobserved nodes count as lagging";

  for (core::ObservationLog* l : {&log, &twin}) {
    l->record(1, 5, 10.0);  // round 5 first sighting
    l->record(2, 5, 10.4);  // 0.4 behind
    l->record(1, 6, 12.0);
    l->record(2, 6, 12.4);
  }
  EXPECT_EQ(log.count(), 4u);
  EXPECT_EQ(log.digest(), twin.digest());
  EXPECT_FALSE(log.lagging(1));  // consistently first
  EXPECT_TRUE(log.lagging(2));   // consistently 0.4 behind
  EXPECT_TRUE(log.lagging(3));   // never observed

  // greedy-skew registered end to end in the strategy registry.
  EXPECT_STREQ(core::to_string(core::ByzStrategy::kGreedySkew), "greedy-skew");
  const auto parsed = parse_byz_strategy("greedy-skew");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, core::ByzStrategy::kGreedySkew);
  EXPECT_NE(std::find(core::all_byz_strategies().begin(),
                      core::all_byz_strategies().end(),
                      core::ByzStrategy::kGreedySkew),
            core::all_byz_strategies().end());
}

TEST(AdaptiveRefresh, SelectiveDropMasksArePureFunctionsOfTheEpochGraph) {
  // The stale-mask regression: the adversary is built once against the
  // initial topology, but churn rewires the graph every epoch. refresh()
  // must reproduce, at every epoch, exactly the masks a fresh adversary
  // constructed against that epoch's graph would choose — the hand-replay.
  const auto topo = relay::Topology::hypercube(4);  // n = 16
  std::vector<bool> faulty(16, false);
  faulty[0] = true;
  faulty[3] = true;

  relay::ChurnPolicy policy;
  policy.churn_rate = 0.25;
  policy.join_batch = 2;
  policy.pinned.assign(16, false);
  policy.pinned[0] = policy.pinned[3] = true;  // faulty relays never churn
  const auto schedule =
      relay::TopologySchedule::generate(topo, policy, 10, 1234);
  ASSERT_TRUE(schedule.dynamic());

  relay::RelayAdversary live(relay::RelayFaultKind::kSelectiveDrop, topo,
                             faulty, 77);
  bool masks_changed = false;
  for (std::size_t epoch = 0; epoch <= schedule.deltas().size(); ++epoch) {
    const auto graph = schedule.at_epoch(epoch);
    live.refresh(graph);
    const relay::RelayAdversary fresh(relay::RelayFaultKind::kSelectiveDrop,
                                      graph, faulty, 77);
    for (const NodeId v : {NodeId{0}, NodeId{3}}) {
      std::size_t served = 0;
      for (const NodeId next : graph.neighbors(v)) {
        EXPECT_EQ(live.forwards(v, next), fresh.forwards(v, next))
            << "epoch " << epoch << ": stale mask at " << v << "→" << next;
        if (live.forwards(v, next)) ++served;
      }
      // The refreshed mask serves ⌈deg/2⌉ of the CURRENT neighbors — a mask
      // frozen at epoch 0 could not (rewired edges fall outside it).
      EXPECT_EQ(served, (graph.neighbors(v).size() + 1) / 2)
          << "epoch " << epoch << " node " << v;
      if (epoch > 0) {
        const relay::RelayAdversary initial(
            relay::RelayFaultKind::kSelectiveDrop, topo, faulty, 77);
        for (const NodeId next : graph.neighbors(v))
          if (initial.forwards(v, next) != fresh.forwards(v, next))
            masks_changed = true;
      }
    }
  }
  EXPECT_TRUE(masks_changed)
      << "churn never rewired a faulty relay's neighborhood — the regression "
         "test has no teeth on this schedule";

  // Runner integration: a churned selective-drop cell runs clean end to end
  // (before the fix the stale allow_ mask indexed rewired neighbors).
  ScenarioSpec spec = witness_spec(relay::RelayFaultKind::kSelectiveDrop);
  spec.n = 16;
  spec.f = max_topology_faults(TopologyKind::kHypercube, 16);
  spec.f_actual = spec.f;
  spec.churn_rate = 0.15;
  spec.rounds = 6;
  spec.warmup = 2;
  const auto churned = run_scenario(spec);
  ASSERT_TRUE(churned.error.empty()) << churned.error;
  ASSERT_TRUE(churned.feasible);
  EXPECT_TRUE(churned.live);
  EXPECT_EQ(churned.rounds_completed, spec.rounds);
}

TEST(AdaptiveTarget, CustomTargetRefusesChurnedNodesAndKeepsStableOnes) {
  // A targeted delay policy aimed at a node that churns silently changes
  // meaning mid-run; the runner must error that cell, both ways.
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.topology = TopologyKind::kHypercube;
  spec.n = 16;
  spec.churn_rate = 0.2;
  spec.join_batch = 2;
  spec.rounds = 5;
  spec.warmup = 1;

  // The beacon anchor n−1 never leaves: targeting it composes with churn.
  spec.custom_delay = *parse_custom_delay("custom:target:15");
  const auto stable = run_scenario(spec);
  EXPECT_TRUE(stable.error.empty()) << stable.error;
  EXPECT_TRUE(stable.live);

  // Under join_batch=2 over 7 epochs some node in 0..n−2 churns; targeting
  // any churned node must error with a message naming the problem.
  std::size_t refused = 0;
  for (NodeId target = 0; target + 1 < spec.n && refused == 0; ++target) {
    spec.custom_delay =
        *parse_custom_delay("custom:target:" + std::to_string(target));
    const auto result = run_scenario(spec);
    if (result.error.empty()) continue;
    EXPECT_NE(result.error.find("churns"), std::string::npos) << result.error;
    EXPECT_TRUE(violates_gate(result, 1e9));
    ++refused;
  }
  EXPECT_EQ(refused, 1u)
      << "no node churned under this schedule — pick a churnier cell";
}

TEST(AdaptiveWitness, GreedyStrictlyBeatsEveryObliviousKindWithinBound) {
  const auto greedy =
      run_scenario(witness_spec(relay::RelayFaultKind::kGreedySkew));
  ASSERT_TRUE(greedy.error.empty()) << greedy.error;
  ASSERT_TRUE(greedy.feasible);
  ASSERT_TRUE(greedy.live);
  ASSERT_TRUE(std::isfinite(greedy.skew_ratio));
  // Stronger — but still legal: the Theorem-17 bound at (d_eff, u_eff)
  // holds unconditionally.
  EXPECT_TRUE(greedy.within_bound)
      << greedy.max_skew << " > " << greedy.predicted_skew;
  EXPECT_EQ(greedy.attack_iters, 1u);
  EXPECT_EQ(greedy.attack_best_seed, 0u);

  for (const auto kind : kObliviousKinds) {
    const auto oblivious = run_scenario(witness_spec(kind));
    SCOPED_TRACE(relay::to_string(kind));
    ASSERT_TRUE(oblivious.error.empty()) << oblivious.error;
    ASSERT_TRUE(std::isfinite(oblivious.skew_ratio));
    EXPECT_TRUE(oblivious.within_bound);
    EXPECT_GT(greedy.skew_ratio, oblivious.skew_ratio + 1e-9)
        << "adaptive adversary not strictly stronger: greedy "
        << greedy.skew_ratio << " vs " << oblivious.skew_ratio;
    // Oblivious rows never read as zero-iteration attacks.
    EXPECT_EQ(oblivious.attack_iters, 0u);
  }
}

TEST(AdaptiveWitness, SearchWeaklyDominatesGreedyAndWinnerReplays) {
  // Random honest delays give the searched schedules headroom the greedy
  // heuristic does not find; on this cell the search win is strict, so the
  // exported best seed is a real (non-sentinel) schedule.
  ScenarioSpec greedy_spec = witness_spec(relay::RelayFaultKind::kGreedySkew);
  greedy_spec.delay = sim::DelayKind::kRandom;
  ScenarioSpec search_spec = witness_spec(relay::RelayFaultKind::kSearch);
  search_spec.delay = sim::DelayKind::kRandom;
  search_spec.search_budget = 8;

  const auto greedy = run_scenario(greedy_spec);
  const auto search = run_scenario(search_spec);
  ASSERT_TRUE(greedy.error.empty()) << greedy.error;
  ASSERT_TRUE(search.error.empty()) << search.error;
  ASSERT_TRUE(std::isfinite(greedy.skew_ratio));
  ASSERT_TRUE(std::isfinite(search.skew_ratio));
  EXPECT_TRUE(search.within_bound);
  EXPECT_EQ(search.attack_iters, 8u);
  // Candidate 0 plays greedy, the argmax keeps the best: weak dominance by
  // construction, strict on this cell.
  EXPECT_GE(search.skew_ratio, greedy.skew_ratio - 1e-12);
  EXPECT_GT(search.skew_ratio, greedy.skew_ratio)
      << "expected a strict search win on this cell";
  ASSERT_NE(search.attack_best_seed, 0u);

  // Replay: one fresh world at the exported (seed, attack_best_seed) —
  // mirroring the runner's static relay setup — reproduces the winning
  // max_skew bit for bit. The (attack_iters, attack_best_seed) columns are
  // a sufficient witness; no search loop needed.
  const auto& spec = search_spec;
  relay::RelayConfig config;
  config.topology = relay::Topology::hypercube(5);
  config.hop_model = spec.model();
  config.seed = search.seed;
  config.clock_kind = spec.clocks;
  config.delay_kind = spec.delay;
  config.faulty = sim::default_faulty_set(spec.f_actual);
  config.fault_kind = relay::RelayFaultKind::kSearch;
  config.attack_seed = search.attack_best_seed;
  const auto effective = relay::compute_effective(config);
  const auto setup = baselines::make_setup(spec.protocol, effective.model,
                                           spec.slack);
  ASSERT_TRUE(setup.feasible);
  config.initial_offset = setup.initial_offset;
  config.horizon = setup.initial_offset +
                   static_cast<double>(spec.rounds + 2) * setup.round_length;
  relay::RelayWorld world(
      config,
      baselines::make_protocol_factory(setup,
                                       static_cast<Round>(spec.rounds)),
      effective);
  const auto replay = world.run();
  EXPECT_EQ(replay.trace.max_skew(), search.max_skew)
      << "winning schedule did not replay from its seed";
}

/// Adaptive grid: greedy + search cells, static and churned, two protocols.
SweepGrid adaptive_grid() {
  SweepGrid grid;
  grid.worlds = {WorldKind::kRelay};
  grid.protocols = {baselines::ProtocolKind::kCps,
                    baselines::ProtocolKind::kSrikanthToueg};
  grid.ns = {8};
  grid.fault_loads = {SweepGrid::kMaxResilience};
  grid.topologies = {TopologyKind::kHypercube, TopologyKind::kRingOfCliques};
  grid.relay_faults = {relay::RelayFaultKind::kGreedySkew,
                       relay::RelayFaultKind::kSearch};
  grid.search_budgets = {4};
  grid.churn_rates = {0.0, 0.1};
  grid.us = {0.01};
  grid.varthetas = {1.001};
  grid.rounds = 5;
  grid.warmup = 2;
  return grid;
}

TEST(AdaptiveDifferential, CsvByteIdenticalAcrossBatchToggleAndThreads) {
  const auto specs = adaptive_grid().expand();
  ASSERT_GE(specs.size(), 8u);

  RunnerOptions reference;
  reference.base_seed = 11;
  reference.threads = 1;
  reference.fast_path = false;
  const std::string ref_csv = to_csv(run_sweep(specs, reference));

  RunnerOptions batched = reference;
  batched.fast_path = true;
  EXPECT_EQ(ref_csv, to_csv(run_sweep(specs, batched)))
      << "adaptive observation stream diverged under the flood fast path";

  RunnerOptions threaded = batched;
  threaded.threads = 4;
  EXPECT_EQ(ref_csv, to_csv(run_sweep(specs, threaded)))
      << "adaptive cells are not thread-order independent";

  EXPECT_NE(ref_csv.find("greedy-skew"), std::string::npos);
  EXPECT_NE(ref_csv.find("attack_best_seed"), std::string::npos);
}

TEST(AdaptiveCampaign, SearchCampaignResumesByteIdenticalAfterKill) {
  const auto specs = adaptive_grid().expand();
  ASSERT_GE(specs.size(), 6u);
  const std::string dir = ::testing::TempDir();
  const std::string clean_csv = dir + "/adaptive_clean.csv";
  const std::string csv = dir + "/adaptive_killed.csv";
  const std::string manifest = dir + "/adaptive_killed.manifest";
  for (const auto& p : {clean_csv, csv, manifest})
    std::filesystem::remove(p);

  auto slurp = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
  };

  {
    CsvCampaign campaign({clean_csv, dir + "/adaptive_clean.manifest", 2, 1},
                         specs);
    run_sweep_streamed(specs, {},
                       [&](const ScenarioResult& r) { campaign.append(r); });
    campaign.finish();
  }
  const std::string clean = slurp(clean_csv);

  // Kill mid-campaign after 3 rows (checkpoint interval 2 leaves the
  // manifest behind the CSV — the torn state), then resume on 4 threads.
  {
    CsvCampaign campaign({csv, manifest, 2, 1}, specs);
    for (std::size_t i = 0; i < 3; ++i)
      campaign.append(run_scenario(specs[i]));
    // no finish(): simulated kill
  }
  CsvCampaign resumed({csv, manifest, 2, 1}, specs);
  EXPECT_EQ(resumed.resume_index(), 2u);
  RunnerOptions options;
  options.threads = 4;
  const std::vector<ScenarioSpec> todo(specs.begin() + resumed.resume_index(),
                                       specs.end());
  run_sweep_streamed(todo, options,
                     [&](const ScenarioResult& r) { resumed.append(r); });
  resumed.finish();
  EXPECT_EQ(slurp(csv), clean)
      << "search cells did not resume to the byte-identical row";
  for (const auto& p :
       {clean_csv, dir + "/adaptive_clean.manifest", csv, manifest})
    std::filesystem::remove(p);
}

TEST(AdaptiveAxes, BudgetAxisCollapsesAndObliviousSurfaceIsUnchanged) {
  // The search-budget axis multiplies kSearch cells only.
  SweepGrid grid = adaptive_grid();
  grid.churn_rates = {0.0};
  grid.relay_faults = {relay::RelayFaultKind::kMaxDelay,
                       relay::RelayFaultKind::kSearch};
  grid.search_budgets = {8, 32};
  const auto specs = grid.expand();
  std::size_t max_delay_cells = 0;
  std::set<std::uint32_t> search_budgets_seen;
  for (const auto& spec : specs) {
    if (spec.relay_fault == relay::RelayFaultKind::kMaxDelay)
      ++max_delay_cells;
    else if (spec.relay_fault == relay::RelayFaultKind::kSearch)
      search_budgets_seen.insert(spec.search_budget);
  }
  EXPECT_EQ(max_delay_cells, 4u);  // 2 protocols × 2 topologies, no ×budget
  EXPECT_EQ(search_budgets_seen, (std::set<std::uint32_t>{8, 32}));

  // Grids without adaptive kinds ignore the axis entirely: same cells, same
  // keys (and therefore the same seeds, digests, and history baselines as
  // before the axis existed).
  SweepGrid oblivious = grid;
  oblivious.relay_faults = {relay::RelayFaultKind::kMaxDelay,
                            relay::RelayFaultKind::kReorder};
  const auto base = oblivious.expand();
  oblivious.search_budgets = {2, 64};
  const auto tweaked = oblivious.expand();
  ASSERT_EQ(base.size(), tweaked.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    EXPECT_EQ(base[i].key(), tweaked[i].key()) << "position " << i;

  // Adaptive kinds multiply the churn axes; oblivious kinds keep their
  // historical static-only cells.
  SweepGrid churned = adaptive_grid();
  churned.relay_faults = {relay::RelayFaultKind::kMaxDelay,
                          relay::RelayFaultKind::kGreedySkew};
  churned.topologies = {TopologyKind::kHypercube};
  churned.protocols = {baselines::ProtocolKind::kCps};
  churned.churn_rates = {0.0, 0.1};
  std::size_t greedy_cells = 0;
  std::size_t greedy_dynamic = 0;
  std::size_t oblivious_dynamic = 0;
  for (const auto& spec : churned.expand()) {
    if (spec.relay_fault == relay::RelayFaultKind::kGreedySkew) {
      ++greedy_cells;
      if (spec.dynamic()) ++greedy_dynamic;
    } else if (spec.dynamic()) {
      ++oblivious_dynamic;
    }
  }
  EXPECT_EQ(greedy_cells, 2u);
  EXPECT_EQ(greedy_dynamic, 1u);
  EXPECT_EQ(oblivious_dynamic, 0u);
}

TEST(AdaptiveAxes, ChurnedAdaptiveCellStaysLiveAndGated) {
  // The expand()-level composition above, run for real: a churned
  // greedy-skew cell completes every round with the faulty relays pinned
  // against the schedule's churn.
  ScenarioSpec spec = witness_spec(relay::RelayFaultKind::kGreedySkew);
  spec.n = 16;
  spec.f = max_topology_faults(TopologyKind::kHypercube, 16);
  spec.f_actual = spec.f;
  spec.churn_rate = 0.1;
  spec.rounds = 6;
  spec.warmup = 2;
  const auto result = run_scenario(spec);
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.live);
  EXPECT_EQ(result.rounds_completed, spec.rounds);
  EXPECT_EQ(result.attack_iters, 1u);
  EXPECT_FALSE(violates_gate(result, 1.0))
      << "dynamic adaptive cells gate on liveness";
}

}  // namespace
}  // namespace crusader::runner
