// Tests for Figure 3 (Crusader Pulse Synchronization) — Theorem 17:
// skew ≤ S, liveness, and the period bounds, in fault-free worlds across
// clock assignments and delay policies.

#include "core/cps.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "helpers.hpp"
#include "util/check.hpp"

namespace crusader::core {
namespace {

using baselines::ProtocolKind;
using testing_ns = ::testing::Test;

struct FaultFreeCase {
  std::uint32_t n;
  sim::ClockKind clocks;
  sim::DelayKind delays;
  std::uint64_t seed;
};

class CpsFaultFree : public ::testing::TestWithParam<FaultFreeCase> {};

TEST_P(CpsFaultFree, Theorem17Holds) {
  const auto c = GetParam();
  const auto model = crusader::testing::small_model(
      c.n, sim::ModelParams::max_faults_signed(c.n));
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  ASSERT_TRUE(setup.feasible);

  const std::size_t rounds = 25;
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, /*f_actual=*/0, ByzStrategy::kCrash, c.seed,
      rounds, c.clocks, c.delays);

  // Liveness.
  ASSERT_TRUE(result.trace.live(rounds)) << "only "
                                         << result.trace.complete_rounds();
  EXPECT_TRUE(result.violations.empty());

  // S-bounded skew for every round.
  const double S = setup.cps.S;
  EXPECT_LE(result.trace.max_skew(), S + 1e-9);

  // Period bounds of Theorem 17.
  EXPECT_GE(result.trace.min_period(), setup.cps.p_min - 1e-9);
  EXPECT_LE(result.trace.max_period(), setup.cps.p_max + 1e-9);
}

std::vector<FaultFreeCase> fault_free_cases() {
  std::vector<FaultFreeCase> cases;
  std::uint64_t seed = 100;
  for (std::uint32_t n : {2u, 3u, 5u, 8u}) {
    for (auto clocks : {sim::ClockKind::kNominal, sim::ClockKind::kSpread,
                        sim::ClockKind::kRandomWalk}) {
      for (auto delays : {sim::DelayKind::kMax, sim::DelayKind::kMin,
                          sim::DelayKind::kRandom, sim::DelayKind::kSplit}) {
        if (n > 3 && clocks == sim::ClockKind::kNominal &&
            delays != sim::DelayKind::kSplit)
          continue;  // keep the grid lean
        cases.push_back(FaultFreeCase{n, clocks, delays, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CpsFaultFree, ::testing::ValuesIn(fault_free_cases()),
    [](const ::testing::TestParamInfo<FaultFreeCase>& info) {
      const auto& c = info.param;
      return "n" + std::to_string(c.n) + "_c" +
             std::to_string(static_cast<int>(c.clocks)) + "_d" +
             std::to_string(static_cast<int>(c.delays)) + "_s" +
             std::to_string(c.seed);
    });

TEST(Cps, SkewConvergesBelowSteadyState) {
  // Start with maximal initial offsets; skew should contract towards the
  // steady-state band (≈ δ-level), visibly below the initial S.
  const auto model = crusader::testing::small_model(5, 2);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, 0, ByzStrategy::kCrash, 42, 30,
      sim::ClockKind::kSpread, sim::DelayKind::kRandom);
  const auto skews = result.trace.skews();
  ASSERT_GE(skews.size(), 30u);
  // Late-phase skew is at most half of the assumed initial bound S.
  double late = 0.0;
  for (std::size_t r = 20; r < 30; ++r) late = std::max(late, skews[r]);
  EXPECT_LT(late, setup.cps.S / 2.0);
}

TEST(Cps, DeltasStayWithinLemma14Bounds) {
  const auto model = crusader::testing::small_model(5, 2);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  std::vector<CpsNode*> nodes(model.n, nullptr);

  CpsConfig config;
  config.params = setup.cps;
  sim::HonestFactory factory = [&nodes, config](NodeId v) {
    auto node = std::make_unique<CpsNode>(config);
    nodes[v] = node.get();
    return node;
  };
  auto world_config =
      crusader::testing::world_config(model, setup, 20, /*seed=*/3);
  sim::World world(world_config, factory, nullptr);
  (void)world.run();

  // Lemma 14(1): −∥p∥ ≤ Δ ≤ ∥p∥ + δ, so |Δ| ≤ S + δ always.
  for (auto* node : nodes) {
    ASSERT_NE(node, nullptr);
    EXPECT_GT(node->stats().rounds_completed, 15u);
    EXPECT_LE(node->stats().max_abs_delta, setup.cps.S + setup.cps.delta + 1e-9);
    EXPECT_EQ(node->stats().negative_waits, 0u);
    EXPECT_EQ(node->stats().bot_estimates, 0u);  // fault-free: no ⊥
  }
}

TEST(Cps, TwoNodeSystem) {
  // n=2, f=⌈2/2⌉−1=0: degenerate but must work (pure drift compensation).
  const auto model = crusader::testing::small_model(2, 0);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, 0, ByzStrategy::kCrash, 9, 20,
      sim::ClockKind::kSpread, sim::DelayKind::kMax);
  EXPECT_TRUE(result.trace.live(20));
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
}

TEST(Cps, InfeasibleParamsRejected) {
  sim::ModelParams model = crusader::testing::small_model(5, 2);
  model.vartheta = 1.5;
  CpsConfig config;
  config.params = core::derive_cps_params(model);
  EXPECT_FALSE(config.params.feasible);
  EXPECT_THROW(CpsNode{config}, util::CheckFailure);
}

TEST(Cps, MaxRoundsStopsPulsing) {
  const auto model = crusader::testing::small_model(3, 1);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  auto factory = baselines::make_protocol_factory(setup, /*max_rounds=*/5);
  auto config = crusader::testing::world_config(model, setup, 30, 1);
  sim::World world(config, factory, nullptr);
  const auto result = world.run();
  for (NodeId v = 0; v < model.n; ++v)
    EXPECT_EQ(result.trace.pulse_count(v), 5u);
}

TEST(Cps, MessageComplexityIsCubicPerRound) {
  // Each pulse: n dealer broadcasts (n−1 msgs each) + up to n(n−1) echoes of
  // (n−1) msgs → Θ(n³). Check the count for a fault-free round is exactly
  // n(n−1) + n(n−1)(n−1) = n(n−1)·n = n²(n−1).
  const auto model = crusader::testing::small_model(4, 1);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  auto factory = baselines::make_protocol_factory(setup, /*max_rounds=*/6);
  auto config = crusader::testing::world_config(model, setup, 8, 1);
  sim::World world(config, factory, nullptr);
  const auto result = world.run();
  const std::uint64_t n = model.n;
  const std::uint64_t per_round = n * n * (n - 1);
  // 5 full collection rounds happen (the 6th pulse stops the protocol).
  EXPECT_EQ(result.messages, 5 * per_round);
}

}  // namespace
}  // namespace crusader::core
