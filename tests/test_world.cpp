#include "sim/world.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "helpers.hpp"
#include "util/check.hpp"

namespace crusader::sim {
namespace {

/// Minimal protocol for world-level tests: pulses every `period` local units
/// and broadcasts one raw message per pulse.
class BeaconNode final : public PulseNode {
 public:
  explicit BeaconNode(double period) : period_(period) {}

  void on_start(Env& env) override {
    env.pulse();
    env.schedule_at_local(env.local_now() + period_, 0);
  }
  void on_message(Env&, const Message&) override { ++received_; }
  void on_timer(Env& env, std::uint64_t) override {
    env.pulse();
    Message m;
    m.kind = MsgKind::kRaw;
    env.broadcast(m);
    env.schedule_at_local(env.local_now() + period_, 0);
  }

  [[nodiscard]] int received() const noexcept { return received_; }

 private:
  double period_;
  int received_ = 0;
};

WorldConfig base_config() {
  WorldConfig config;
  config.model = testing::small_model(4, 1);
  config.horizon = 20.0;
  config.initial_offset = 0.2;
  config.clock_kind = ClockKind::kNominal;
  config.delay_kind = DelayKind::kRandom;
  return config;
}

HonestFactory beacon_factory() {
  return [](NodeId) { return std::make_unique<BeaconNode>(2.0); };
}

TEST(World, RunsAndRecordsPulses) {
  World world(base_config(), beacon_factory(), nullptr);
  const RunResult result = world.run();
  EXPECT_GE(result.trace.complete_rounds(), 8u);
  EXPECT_GT(result.messages, 0u);
  EXPECT_GT(result.events, 0u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(World, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    WorldConfig config = base_config();
    config.seed = seed;
    config.clock_kind = ClockKind::kRandomWalk;
    World world(config, beacon_factory(), nullptr);
    return world.run();
  };
  const RunResult a = run_once(5);
  const RunResult b = run_once(5);
  const RunResult c = run_once(6);
  ASSERT_EQ(a.trace.complete_rounds(), b.trace.complete_rounds());
  for (std::size_t r = 0; r < a.trace.complete_rounds(); ++r)
    EXPECT_DOUBLE_EQ(a.trace.skew(r), b.trace.skew(r));
  // Different seed should change at least some pulse time.
  bool any_diff = c.trace.complete_rounds() != a.trace.complete_rounds();
  const std::size_t rounds = std::min(a.trace.complete_rounds(),
                                      c.trace.complete_rounds());
  for (std::size_t r = 0; !any_diff && r < rounds; ++r)
    any_diff = a.trace.skew(r) != c.trace.skew(r);
  EXPECT_TRUE(any_diff);
}

TEST(World, ClockKindsRespectModel) {
  for (ClockKind kind : {ClockKind::kNominal, ClockKind::kSpread,
                         ClockKind::kRandomWalk}) {
    WorldConfig config = base_config();
    config.clock_kind = kind;
    World world(config, beacon_factory(), nullptr);
    for (NodeId v = 0; v < config.model.n; ++v) {
      world.clock(v).check_valid(config.model.vartheta);
      EXPECT_GE(world.clock(v).offset(), 0.0);
      EXPECT_LE(world.clock(v).offset(), config.initial_offset + 1e-12);
    }
  }
}

TEST(World, CustomClocks) {
  WorldConfig config = base_config();
  config.clock_kind = ClockKind::kCustom;
  for (NodeId v = 0; v < config.model.n; ++v)
    config.custom_clocks.push_back(HardwareClock::constant(1.0, 0.05 * v));
  World world(config, beacon_factory(), nullptr);
  EXPECT_DOUBLE_EQ(world.clock(2).offset(), 0.1);
}

TEST(World, CustomClockCountMismatchThrows) {
  WorldConfig config = base_config();
  config.clock_kind = ClockKind::kCustom;
  config.custom_clocks.push_back(HardwareClock::constant(1.0, 0.0));
  EXPECT_THROW(World(config, beacon_factory(), nullptr), util::CheckFailure);
}

TEST(World, FaultyNeedsByzantineFactory) {
  WorldConfig config = base_config();
  config.faulty = {0};
  EXPECT_THROW(World(config, beacon_factory(), nullptr), util::CheckFailure);
}

TEST(World, TooManyFaultyRejected) {
  WorldConfig config = base_config();
  config.faulty = {0, 1};  // model.f == 1
  auto byz = [](NodeId) { return std::make_unique<core::CrashByzantine>(); };
  EXPECT_THROW(World(config, beacon_factory(), byz), util::CheckFailure);
}

TEST(World, CrashFaultyNodesDontBlockHonest) {
  WorldConfig config = base_config();
  config.faulty = {3};
  auto byz = [](NodeId) { return std::make_unique<core::CrashByzantine>(); };
  World world(config, beacon_factory(), byz);
  const RunResult result = world.run();
  EXPECT_GE(result.trace.complete_rounds(), 8u);
  EXPECT_TRUE(result.trace.pulses(3).empty());
}

TEST(World, MessagesDelivered) {
  WorldConfig config = base_config();
  // Keep raw pointers to inspect nodes after the run.
  std::vector<BeaconNode*> nodes(config.model.n, nullptr);
  HonestFactory factory = [&nodes](NodeId v) {
    auto node = std::make_unique<BeaconNode>(2.0);
    nodes[v] = node.get();
    return node;
  };
  World world(config, factory, nullptr);
  (void)world.run();
  for (auto* node : nodes) {
    ASSERT_NE(node, nullptr);
    EXPECT_GT(node->received(), 10);
  }
}

TEST(DefaultFaultySet, FirstFIds) {
  EXPECT_EQ(default_faulty_set(3), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(default_faulty_set(0).empty());
}

}  // namespace
}  // namespace crusader::sim
