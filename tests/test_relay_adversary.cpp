// Byzantine relay adversaries (Appendix A under SecureTime-style attacks):
// signatures stop equivocation, but faulty relays may still delay, reorder,
// or selectively drop the signed copies they forward. Every fault kind on
// every sparse topology family must keep realized skew within the
// Theorem-17 bound evaluated at the effective (d_eff, u_eff) — the
// adversary acts inside the model, so the translation's guarantee is
// unconditional. The upgrade over crash relays must also be observable
// (max-delay strictly beats crash on ring cells), and sweeps must stay
// deterministic across worker-thread counts.

#include "relay/adversary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "relay/topology.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"

namespace crusader::runner {
namespace {

constexpr relay::RelayFaultKind kAllFaultKinds[] = {
    relay::RelayFaultKind::kCrash, relay::RelayFaultKind::kMaxDelay,
    relay::RelayFaultKind::kReorder, relay::RelayFaultKind::kSelectiveDrop};

constexpr TopologyKind kSparseTopologies[] = {
    TopologyKind::kRing, TopologyKind::kChordalRing,
    TopologyKind::kRingOfCliques, TopologyKind::kHypercube};

/// The acceptance grid: every fault kind × every sparse family at n = 8,
/// each at the topology's maximum survivable fault load.
SweepGrid adversary_grid() {
  SweepGrid grid;
  grid.worlds = {WorldKind::kRelay};
  grid.protocols = {baselines::ProtocolKind::kCps};
  grid.ns = {8};
  grid.fault_loads = {SweepGrid::kMaxResilience};
  grid.topologies.assign(std::begin(kSparseTopologies),
                         std::end(kSparseTopologies));
  grid.relay_faults.assign(std::begin(kAllFaultKinds),
                           std::end(kAllFaultKinds));
  grid.us = {0.01};
  grid.varthetas = {1.001};
  grid.rounds = 6;
  grid.warmup = 2;
  return grid;
}

TEST(RelayAdversary, BoundConformanceAcrossFaultKindsAndTopologies) {
  const auto specs = adversary_grid().expand();
  // 4 fault kinds × 4 topology families, one grid cell each.
  ASSERT_EQ(specs.size(), 16u);

  const auto report = run_sweep(specs, {});
  std::set<std::pair<TopologyKind, relay::RelayFaultKind>> cells;
  for (const auto& r : report.results) {
    SCOPED_TRACE(r.spec.name());
    cells.emplace(r.spec.topology, r.spec.relay_fault);
    ASSERT_TRUE(r.error.empty()) << r.error;
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(r.live);
    EXPECT_EQ(r.rounds_completed, 6u);
    // The fault load resolved to the family's documented survivable f.
    EXPECT_EQ(r.spec.f, max_topology_faults(r.spec.topology, 8));
    EXPECT_GE(r.spec.f, 1u) << "cell must actually instantiate faulty relays";
    // The adversary acts within the model (legal delays, subset of the
    // crash cut), so Theorem 17 at (d_eff, u_eff) must hold.
    EXPECT_TRUE(r.within_bound)
        << "skew " << r.max_skew << " > bound " << r.predicted_skew;
    ASSERT_TRUE(std::isfinite(r.skew_ratio));
    EXPECT_LE(r.skew_ratio, 1.0 + 1e-9);
    EXPECT_DOUBLE_EQ(r.d_eff, r.worst_hops * r.spec.d);
  }
  EXPECT_EQ(cells.size(), 16u) << "every fault kind × topology cell ran";
}

TEST(RelayAdversary, MaxDelayStrictlyWorseThanCrashOnRing) {
  // The adversary upgrade must be observable: a relay that holds every
  // forwarded copy (and its own broadcast's first hops) for the full d_hop
  // injects per-path asymmetry a crashed — silent — relay cannot. Under the
  // deterministic honest delay policies the comparison is seed-independent;
  // require a strict witness on at least one ring cell.
  std::size_t witnesses = 0;
  for (const auto delay : {sim::DelayKind::kMin, sim::DelayKind::kMax}) {
    for (const double u : {0.01, 0.02}) {
      ScenarioSpec spec;
      spec.world = WorldKind::kRelay;
      spec.topology = TopologyKind::kRing;
      spec.n = 8;
      spec.f = 1;
      spec.f_actual = 1;
      spec.u = u;
      spec.u_tilde = u;
      spec.vartheta = 1.001;
      spec.delay = delay;
      spec.rounds = 10;
      spec.warmup = 3;

      spec.relay_fault = relay::RelayFaultKind::kCrash;
      const auto crash = run_scenario(spec);
      spec.relay_fault = relay::RelayFaultKind::kMaxDelay;
      const auto max_delay = run_scenario(spec);

      SCOPED_TRACE(spec.name());
      ASSERT_TRUE(crash.error.empty()) << crash.error;
      ASSERT_TRUE(max_delay.error.empty()) << max_delay.error;
      ASSERT_TRUE(crash.feasible && max_delay.feasible);
      EXPECT_TRUE(crash.within_bound);
      EXPECT_TRUE(max_delay.within_bound);
      if (max_delay.steady_skew > crash.steady_skew + 1e-12) ++witnesses;
    }
  }
  EXPECT_GE(witnesses, 1u)
      << "max-delay relays never beat crash relays — adversary not wired?";
}

TEST(RelayAdversary, SweepCsvByteIdenticalAcrossThreadCounts) {
  const auto specs = adversary_grid().expand();

  RunnerOptions serial;
  serial.base_seed = 23;
  serial.threads = 1;
  const auto report1 = run_sweep(specs, serial);

  RunnerOptions parallel = serial;
  parallel.threads = 4;
  const auto report4 = run_sweep(specs, parallel);

  const std::string csv1 = to_csv(report1);
  const std::string csv4 = to_csv(report4);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(report1.error_count(), 0u);
  // The fault kind made it into the CSV schema.
  EXPECT_NE(csv1.find("relay_fault"), std::string::npos);
  EXPECT_NE(csv1.find("selective-drop"), std::string::npos);
}

TEST(RelayAdversary, FaultFreeCellsCollapseTheFaultAxis) {
  // With no faulty relays there is nothing to misbehave: the relay-fault
  // axis must collapse instead of multiplying identical worlds.
  auto grid = adversary_grid();
  grid.fault_loads = {0};
  const auto specs = grid.expand();
  EXPECT_EQ(specs.size(), 4u);  // one per topology family, not 16
  for (const auto& spec : specs)
    EXPECT_EQ(spec.relay_fault, relay::RelayFaultKind::kCrash);

  // Non-relay worlds ignore the axis entirely.
  grid.worlds = {WorldKind::kComplete};
  grid.fault_loads = {SweepGrid::kMaxResilience};
  grid.topologies = {TopologyKind::kComplete};
  EXPECT_EQ(grid.expand().size(), 1u);
}

TEST(RelayAdversary, ParticipationFollowsKind) {
  const auto topo = relay::Topology::ring(6);
  std::vector<bool> faulty(6, false);
  faulty[2] = true;

  const relay::RelayAdversary crash(relay::RelayFaultKind::kCrash, topo,
                                    faulty, 1);
  EXPECT_FALSE(crash.participates(2));
  EXPECT_TRUE(crash.participates(0));
  EXPECT_FALSE(crash.forwards(2, 1));

  const relay::RelayAdversary delay(relay::RelayFaultKind::kMaxDelay, topo,
                                    faulty, 1);
  EXPECT_TRUE(delay.participates(2));
  EXPECT_TRUE(delay.forwards(2, 1));
  EXPECT_DOUBLE_EQ(delay.hop_delay(2, 1, 7, 0.95, 0.9, 1.0), 1.0);
  // Honest nodes keep the honest policy's delay.
  EXPECT_DOUBLE_EQ(delay.hop_delay(0, 1, 7, 0.95, 0.9, 1.0), 0.95);
}

TEST(RelayAdversary, ReorderPinsWindowExtremesDeterministically) {
  const auto topo = relay::Topology::ring(6);
  std::vector<bool> faulty(6, false);
  faulty[2] = true;
  const relay::RelayAdversary a(relay::RelayFaultKind::kReorder, topo, faulty,
                                42);
  const relay::RelayAdversary b(relay::RelayFaultKind::kReorder, topo, faulty,
                                42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (std::uint64_t flood = 0; flood < 64; ++flood) {
    const double d1 = a.hop_delay(2, 1, flood, 0.95, 0.9, 1.0);
    EXPECT_DOUBLE_EQ(d1, b.hop_delay(2, 1, flood, 0.95, 0.9, 1.0));
    EXPECT_TRUE(d1 == 0.9 || d1 == 1.0);
    saw_lo |= d1 == 0.9;
    saw_hi |= d1 == 1.0;
  }
  // Both extremes occur: successive floods can swap arrival order.
  EXPECT_TRUE(saw_lo && saw_hi);
}

TEST(RelayAdversary, SelectiveDropServesHalfTheNeighbors) {
  const auto topo = relay::Topology::hypercube(3);  // degree 3 everywhere
  std::vector<bool> faulty(8, false);
  faulty[0] = true;
  faulty[5] = true;
  const relay::RelayAdversary a(relay::RelayFaultKind::kSelectiveDrop, topo,
                                faulty, 9);
  for (const NodeId v : {NodeId{0}, NodeId{5}}) {
    std::size_t served = 0;
    for (const NodeId next : topo.neighbors(v))
      if (a.forwards(v, next)) ++served;
    EXPECT_EQ(served, 2u);  // ceil(3/2)
  }
  // Honest nodes serve everyone.
  for (const NodeId next : topo.neighbors(1))
    EXPECT_TRUE(a.forwards(1, next));
  // The subset is a pure function of the seed.
  const relay::RelayAdversary b(relay::RelayFaultKind::kSelectiveDrop, topo,
                                faulty, 9);
  for (const NodeId next : topo.neighbors(0))
    EXPECT_EQ(a.forwards(0, next), b.forwards(0, next));
}

TEST(RelayAdversary, SelectiveDropKeepsEveryHonestNodeLive) {
  // Selective drop keeps a superset of the crash graph's edges, so the
  // flood still reaches everyone and liveness is untouched.
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.topology = TopologyKind::kRingOfCliques;
  spec.n = 8;
  spec.f = 3;
  spec.f_actual = 3;
  spec.u = 0.01;
  spec.u_tilde = 0.01;
  spec.vartheta = 1.001;
  spec.relay_fault = relay::RelayFaultKind::kSelectiveDrop;
  spec.rounds = 6;
  spec.warmup = 2;
  const auto r = run_scenario(spec);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.live);
  EXPECT_TRUE(r.within_bound)
      << "skew " << r.max_skew << " > bound " << r.predicted_skew;
}

}  // namespace
}  // namespace crusader::runner
