#include "sim/hardware_clock.hpp"

#include <gtest/gtest.h>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace crusader::sim {
namespace {

TEST(HardwareClock, ConstantRateMapsLinearly) {
  const auto clock = HardwareClock::constant(1.5, 2.0);
  EXPECT_DOUBLE_EQ(clock.local(0.0), 2.0);
  EXPECT_DOUBLE_EQ(clock.local(4.0), 8.0);
  EXPECT_DOUBLE_EQ(clock.real(8.0), 4.0);
  EXPECT_DOUBLE_EQ(clock.rate_at(1.0), 1.5);
}

TEST(HardwareClock, InverseRoundTrips) {
  util::Rng rng(5);
  auto clock = HardwareClock::random_walk(rng, 1.1, 0.3, 2.0, 50.0);
  for (double t = 0.0; t < 60.0; t += 0.37) {
    EXPECT_NEAR(clock.real(clock.local(t)), t, 1e-9) << "t=" << t;
  }
}

TEST(HardwareClock, TwoPhaseRamp) {
  // The Theorem-5 fast clock: rate ϑ until t*, then rate 1 with offset.
  const double vartheta = 1.05;
  const double u_tilde = 0.3;
  const double t_star = 2.0 * u_tilde / (3.0 * (vartheta - 1.0));
  const auto clock = HardwareClock::two_phase(vartheta, t_star, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(clock.local(0.0), 0.0);
  EXPECT_NEAR(clock.local(t_star), t_star + 2.0 * u_tilde / 3.0, 1e-9);
  // Past the ramp: H(t) = t + 2ũ/3.
  EXPECT_NEAR(clock.local(t_star + 5.0), t_star + 5.0 + 2.0 * u_tilde / 3.0,
              1e-9);
}

TEST(HardwareClock, TwoPhaseZeroSwitchDegeneratesToConstant) {
  const auto clock = HardwareClock::two_phase(2.0, 0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(clock.rate_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(clock.local(3.0), 3.5);
}

TEST(HardwareClock, RandomWalkRespectsRateBounds) {
  util::Rng rng(17);
  const auto clock = HardwareClock::random_walk(rng, 1.2, 0.0, 1.0, 30.0);
  clock.check_valid(1.2);
  EXPECT_GE(clock.min_rate(), 1.0);
  EXPECT_LE(clock.max_rate(), 1.2);
}

TEST(HardwareClock, MonotoneAndDriftBounded) {
  util::Rng rng(23);
  const double vartheta = 1.08;
  const auto clock = HardwareClock::random_walk(rng, vartheta, 0.1, 0.5, 20.0);
  double prev = clock.local(0.0);
  for (double t = 0.01; t < 25.0; t += 0.01) {
    const double cur = clock.local(t);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
  // Global drift bound: t ≤ H(t) − H(0) ≤ ϑ t.
  for (double t : {1.0, 5.0, 19.0, 24.0}) {
    const double elapsed = clock.local(t) - clock.local(0.0);
    EXPECT_GE(elapsed, t - 1e-9);
    EXPECT_LE(elapsed, vartheta * t + 1e-9);
  }
}

TEST(HardwareClock, SegmentBoundariesExact) {
  std::vector<ClockSegment> segs;
  segs.push_back({0.0, 0.0, 1.0});
  segs.push_back({2.0, 2.0, 1.1});
  const HardwareClock clock(std::move(segs));
  EXPECT_DOUBLE_EQ(clock.local(2.0), 2.0);
  EXPECT_DOUBLE_EQ(clock.local(3.0), 2.0 + 1.1);
  EXPECT_NEAR(clock.real(2.0 + 1.1), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(clock.rate_at(1.999), 1.0);
  EXPECT_DOUBLE_EQ(clock.rate_at(2.0), 1.1);
}

TEST(HardwareClock, RejectsDiscontinuousSegments) {
  std::vector<ClockSegment> segs;
  segs.push_back({0.0, 0.0, 1.0});
  segs.push_back({1.0, 5.0, 1.0});  // jump
  EXPECT_THROW(HardwareClock{std::move(segs)}, util::CheckFailure);
}

TEST(HardwareClock, RejectsNonPositiveRate) {
  std::vector<ClockSegment> segs;
  segs.push_back({0.0, 0.0, 0.0});
  EXPECT_THROW(HardwareClock{std::move(segs)}, util::CheckFailure);
}

TEST(HardwareClock, RejectsWrongStart) {
  std::vector<ClockSegment> segs;
  segs.push_back({1.0, 0.0, 1.0});
  EXPECT_THROW(HardwareClock{std::move(segs)}, util::CheckFailure);
}

TEST(HardwareClock, CheckValidFlagsOutOfRangeRate) {
  const auto clock = HardwareClock::constant(1.5, 0.0);
  EXPECT_THROW(clock.check_valid(1.2), util::CheckFailure);
  clock.check_valid(1.5);  // no throw
}

TEST(HardwareClock, RealBeforeOffsetRejected) {
  const auto clock = HardwareClock::constant(1.0, 2.0);
  EXPECT_THROW((void)clock.real(1.0), util::CheckFailure);
}

}  // namespace
}  // namespace crusader::sim
