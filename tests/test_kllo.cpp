// KLLO per-edge-age envelope (runner/kllo.hpp): the pure formula the
// conformance harness grades every live edge against. Anchored here:
// age 0 gets the full global settling allowance, the allowance decays
// linearly and is gone after the stabilization window, the settled band
// scales as O(log n), and the stabilization multiplier stretches the
// window without moving either endpoint.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "relay/schedule.hpp"
#include "relay/topology.hpp"
#include "runner/kllo.hpp"
#include "sim/trace.hpp"

namespace crusader::runner {
namespace {

KlloEnvelopeParams params_for(std::uint32_t n, double sigma = 0.07,
                              double stab_mult = 1.0, double kappa = 1.0) {
  KlloEnvelopeParams params;
  params.sigma = sigma;
  params.kappa = kappa;
  params.global = static_cast<double>(n) * sigma;
  params.stab_mult = stab_mult;
  return params;
}

double base_of(std::uint32_t n, const KlloEnvelopeParams& params) {
  return params.kappa * params.sigma * (1.0 + std::log2(n));
}

std::uint64_t stab_of(std::uint32_t n, const KlloEnvelopeParams& params) {
  return static_cast<std::uint64_t>(
      std::ceil(params.stab_mult * (1.0 + std::log2(n))));
}

TEST(KlloEnvelope, TableOfAgesAndSizes) {
  struct Case {
    std::uint32_t n;
    double stab_mult;
  };
  const Case cases[] = {{4, 1.0},    {16, 1.0},  {16, 4.0},
                        {256, 1.0},  {256, 2.5}, {1024, 1.0},
                        {1u << 20, 1.0}};
  for (const auto& c : cases) {
    const auto params = params_for(c.n, 0.07, c.stab_mult);
    const double base = base_of(c.n, params);
    const double global = params.global;
    const std::uint64_t stab = stab_of(c.n, params);

    // Age 0: a brand-new edge gets the full global allowance (for every n
    // in the table, global = n·sigma dominates the O(log n) base).
    ASSERT_GT(global, base) << "n=" << c.n;
    EXPECT_DOUBLE_EQ(kllo_envelope(0, c.n, params), global) << "n=" << c.n;

    // Pre-stabilization: strictly between base and global, and monotone
    // non-increasing in age.
    double prev = global;
    for (std::uint64_t age = 1; age < stab; ++age) {
      const double env = kllo_envelope(age, c.n, params);
      EXPECT_LT(env, global) << "n=" << c.n << " age=" << age;
      EXPECT_GT(env, base) << "n=" << c.n << " age=" << age;
      EXPECT_LE(env, prev) << "n=" << c.n << " age=" << age;
      prev = env;
    }

    // At and past stabilization: exactly the settled O(log n) band.
    EXPECT_DOUBLE_EQ(kllo_envelope(stab, c.n, params), base) << "n=" << c.n;
    EXPECT_DOUBLE_EQ(kllo_envelope(stab + 1, c.n, params), base)
        << "n=" << c.n;
    EXPECT_DOUBLE_EQ(kllo_envelope(10 * stab + 7, c.n, params), base)
        << "n=" << c.n;
  }
}

TEST(KlloEnvelope, DecayIsLinearInAge) {
  const auto params = params_for(256);
  const double base = base_of(256, params);
  const std::uint64_t stab = stab_of(256, params);  // ceil(1·9) = 9
  ASSERT_EQ(stab, 9u);
  for (std::uint64_t age = 0; age <= stab; ++age) {
    const double expected =
        base + (params.global - base) *
                   (1.0 - static_cast<double>(age) / static_cast<double>(stab));
    EXPECT_NEAR(kllo_envelope(age, 256, params), expected, 1e-12)
        << "age=" << age;
  }
}

TEST(KlloEnvelope, SettledBandGrowsLogarithmically) {
  // The settled envelope is kappa·sigma·(1+log2 n): doubling n adds exactly
  // one kappa·sigma step, so envelope(∞)/log-term is constant — the O(log n)
  // asymptote, not O(n).
  const double sigma = 0.05;
  double prev = 0.0;
  for (std::uint32_t e = 1; e <= 20; ++e) {
    const std::uint32_t n = 1u << e;
    const auto params = params_for(n, sigma);
    const double settled = kllo_envelope(1u << 30, n, params);
    EXPECT_NEAR(settled, sigma * (1.0 + e), 1e-9) << "n=" << n;
    if (e > 1) {
      EXPECT_NEAR(settled - prev, sigma, 1e-9) << "n=" << n;
    }
    prev = settled;
  }
  // Sanity against the linear alternative: at n = 2^20 the settled band is
  // 21·sigma, vastly below the n·sigma global allowance.
  EXPECT_LT(prev, (1u << 20) * sigma / 1000.0);
}

TEST(KlloEnvelope, StabMultiplierStretchesTheWindowOnly) {
  const auto tight = params_for(64, 0.07, 1.0);
  const auto loose = params_for(64, 0.07, 4.0);
  const std::uint64_t tight_stab = stab_of(64, tight);  // 7
  const std::uint64_t loose_stab = stab_of(64, loose);  // 28
  ASSERT_LT(tight_stab, loose_stab);

  // Endpoints agree: same allowance at age 0, same settled band.
  EXPECT_DOUBLE_EQ(kllo_envelope(0, 64, tight), kllo_envelope(0, 64, loose));
  EXPECT_DOUBLE_EQ(kllo_envelope(loose_stab, 64, tight),
                   kllo_envelope(loose_stab, 64, loose));

  // In between, the stretched window is strictly more generous: an age that
  // is settled under mult=1 still carries allowance under mult=4.
  EXPECT_DOUBLE_EQ(kllo_envelope(tight_stab, 64, tight), base_of(64, tight));
  EXPECT_GT(kllo_envelope(tight_stab, 64, loose), base_of(64, loose));
}

TEST(KlloEnvelope, DegenerateShapes) {
  // n = 1: the log term clamps to 1, envelope stays finite and positive.
  auto params = params_for(1);
  EXPECT_DOUBLE_EQ(kllo_envelope(0, 1, params), params.sigma);
  EXPECT_DOUBLE_EQ(kllo_envelope(5, 1, params), params.sigma);

  // A global allowance below the settled band never narrows the envelope:
  // the envelope is base at every age (max(0, global − base) clamps).
  params = params_for(1024);
  params.global = 0.0;
  const double base = base_of(1024, params);
  EXPECT_DOUBLE_EQ(kllo_envelope(0, 1024, params), base);
  EXPECT_DOUBLE_EQ(kllo_envelope(100, 1024, params), base);

  // kappa scales the settled band linearly.
  const auto half = params_for(256, 0.07, 1.0, 0.5);
  EXPECT_NEAR(kllo_envelope(1u << 20, 256, half),
              0.5 * base_of(256, params_for(256)), 1e-12);

  // A tiny stab multiplier still leaves a one-round window (stab >= 1), so
  // age 0 keeps the full allowance.
  auto tiny = params_for(256);
  tiny.stab_mult = 1e-6;
  EXPECT_DOUBLE_EQ(kllo_envelope(0, 256, tiny), tiny.global);
  EXPECT_DOUBLE_EQ(kllo_envelope(1, 256, tiny), base_of(256, tiny));
}

TEST(KlloConformance, EmptyTraceReportsAbsentMetrics) {
  const sim::PulseTrace trace(4, std::vector<bool>(4, false));
  const auto schedule =
      relay::TopologySchedule::static_schedule(relay::Topology::ring(4));
  const auto out = kllo_conformance(trace, schedule, params_for(4));
  EXPECT_TRUE(std::isnan(out.ratio));
  EXPECT_TRUE(std::isnan(out.edge_age_min));
  EXPECT_EQ(out.violations, 0u);
}

}  // namespace
}  // namespace crusader::runner
