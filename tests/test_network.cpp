#include "sim/network.hpp"

#include <cstddef>
#include <gtest/gtest.h>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::sim {
namespace {

ModelParams test_model() {
  ModelParams m;
  m.n = 4;
  m.f = 1;
  m.d = 1.0;
  m.u = 0.1;
  m.u_tilde = 0.3;
  m.vartheta = 1.05;
  return m;
}

struct Fixture {
  Engine engine;
  std::vector<std::pair<NodeId, Message>> delivered;

  std::unique_ptr<Network> make(DelayKind kind,
                                std::vector<bool> faulty = {false, false,
                                                            false, true},
                                Enforcement enforcement = Enforcement::kThrow) {
    auto net = std::make_unique<Network>(engine, test_model(), faulty,
                                         make_delay_policy(kind, 4),
                                         util::Rng(1), enforcement);
    net->set_deliver([this](NodeId to, const Message& m) {
      delivered.emplace_back(to, m);
    });
    return net;
  }
};

TEST(Network, HonestDelayWithinBounds) {
  Fixture fx;
  auto net = fx.make(DelayKind::kRandom);
  for (int i = 0; i < 50; ++i) net->send(0, 1, Message{});
  // All deliveries happen in [d-u, d] = [0.9, 1.0].
  fx.engine.run_until(0.9 - 1e-9);
  EXPECT_TRUE(fx.delivered.empty());
  fx.engine.run_until(1.0 + 1e-9);
  EXPECT_EQ(fx.delivered.size(), 50u);
}

TEST(Network, FaultyLinkUsesUtilde) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMin);
  net->send(3, 0, Message{});  // faulty sender: lo = d - u_tilde = 0.7
  fx.engine.run_until(0.7 + 1e-9);
  EXPECT_EQ(fx.delivered.size(), 1u);
}

TEST(Network, MinDelayHonest) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMin);
  net->send(0, 1, Message{});
  fx.engine.run_until(0.9 - 1e-6);
  EXPECT_TRUE(fx.delivered.empty());
  fx.engine.run_until(0.9 + 1e-9);
  EXPECT_EQ(fx.delivered.size(), 1u);
}

TEST(Network, MaxDelay) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  net->send(0, 1, Message{});
  fx.engine.run_until(1.0 - 1e-6);
  EXPECT_TRUE(fx.delivered.empty());
  fx.engine.run_until(1.0 + 1e-9);
  EXPECT_EQ(fx.delivered.size(), 1u);
}

TEST(Network, SplitDelayByRecipient) {
  Fixture fx;
  auto net = fx.make(DelayKind::kSplit);
  net->send(0, 1, Message{});  // id 1 < n/2 → min delay
  net->send(0, 2, Message{});  // id 2 ≥ n/2 → max delay
  fx.engine.run_until(0.95);
  ASSERT_EQ(fx.delivered.size(), 1u);
  EXPECT_EQ(fx.delivered[0].first, 1u);
  fx.engine.run_until(1.1);
  EXPECT_EQ(fx.delivered.size(), 2u);
}

TEST(Network, SelfSendRejected) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  EXPECT_THROW(net->send(1, 1, Message{}), util::CheckFailure);
}

TEST(Network, ByzantineExplicitDelayHonored) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  net->send_with_delay(3, 0, Message{}, 0.75);
  fx.engine.run_until(0.75 + 1e-9);
  EXPECT_EQ(fx.delivered.size(), 1u);
}

TEST(Network, ByzantineDelayOutOfBoundsThrows) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  EXPECT_THROW(net->send_with_delay(3, 0, Message{}, 0.5),
               util::ModelViolation);
  EXPECT_THROW(net->send_with_delay(3, 0, Message{}, 1.5),
               util::ModelViolation);
}

TEST(Network, ByzantineDelayFromHonestRejected) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  EXPECT_THROW(net->send_with_delay(0, 1, Message{}, 1.0),
               util::CheckFailure);
}

TEST(Network, KnowledgeRuleBlocksUnseenHonestSignature) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  crypto::Pki pki(4, crypto::Pki::Kind::kSymbolic, 1);
  Message m;
  m.kind = MsgKind::kTcbSig;
  m.sig = pki.sign(0, crypto::make_pulse_payload(1));  // honest node 0's sig
  EXPECT_THROW(net->send(3, 1, m), util::ModelViolation);
}

TEST(Network, KnowledgeRuleAllowsAfterReceipt) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  crypto::Pki pki(4, crypto::Pki::Kind::kSymbolic, 1);
  Message m;
  m.kind = MsgKind::kTcbSig;
  m.sig = pki.sign(0, crypto::make_pulse_payload(1));
  net->send(0, 3, m);          // deliver to the faulty node first
  fx.engine.run_until(2.0);    // delivery learns the signature
  net->send(3, 1, m);          // now the replay is legal
  fx.engine.run_until(4.0);
  EXPECT_EQ(fx.delivered.size(), 2u);
}

TEST(Network, KnowledgeRuleIgnoresFaultySigners) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  crypto::Pki pki(4, crypto::Pki::Kind::kSymbolic, 1);
  Message m;
  m.kind = MsgKind::kTcbSig;
  m.sig = pki.sign(3, crypto::make_pulse_payload(1));  // its own key
  net->send(3, 1, m);  // no throw
  fx.engine.run_until(2.0);
  EXPECT_EQ(fx.delivered.size(), 1u);
}

TEST(Network, RecordModeCollectsViolations) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax, {false, false, false, true},
                     Enforcement::kRecord);
  crypto::Pki pki(4, crypto::Pki::Kind::kSymbolic, 1);
  Message m;
  m.kind = MsgKind::kTcbSig;
  m.sig = pki.sign(0, crypto::make_pulse_payload(1));
  net->send(3, 1, m);  // violation recorded, message still delivered
  EXPECT_EQ(net->violations().size(), 1u);
  fx.engine.run_until(2.0);
  EXPECT_EQ(fx.delivered.size(), 1u);
}

TEST(Network, StatsCountMessagesAndSignatures) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  crypto::Pki pki(4, crypto::Pki::Kind::kSymbolic, 1);
  Message plain;
  plain.kind = MsgKind::kLwPulse;
  net->send(0, 1, plain);
  Message with_sig;
  with_sig.kind = MsgKind::kTcbSig;
  with_sig.sig = pki.sign(0, crypto::make_pulse_payload(1));
  net->send(0, 1, with_sig);
  EXPECT_EQ(net->stats().messages, 2u);
  EXPECT_EQ(net->stats().signatures_carried, 1u);
  EXPECT_EQ(net->stats().by_kind[static_cast<std::size_t>(MsgKind::kLwPulse)],
            1u);
}

TEST(Network, MinDelayQuery) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  EXPECT_DOUBLE_EQ(net->min_delay(0, 1), 0.9);   // honest-honest
  EXPECT_DOUBLE_EQ(net->min_delay(0, 3), 0.7);   // faulty endpoint
  EXPECT_DOUBLE_EQ(net->min_delay(3, 0), 0.7);
}

TEST(Network, SenderStamped) {
  Fixture fx;
  auto net = fx.make(DelayKind::kMax);
  net->send(2, 1, Message{});
  fx.engine.run_until(2.0);
  ASSERT_EQ(fx.delivered.size(), 1u);
  EXPECT_EQ(fx.delivered[0].second.sender, 2u);
}

}  // namespace
}  // namespace crusader::sim
