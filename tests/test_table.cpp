#include "util/table.hpp"

#include <cstddef>
#include <gtest/gtest.h>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace crusader::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "bee"});
  t.add_row({"1", "2"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("bee"), std::string::npos);
  EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table t;
  t.set_header({"x", "y"});
  t.add_row({"longvalue", "1"});
  std::ostringstream oss;
  t.print(oss);
  // Every line between rules must have equal length.
  std::istringstream iss(oss.str());
  std::string line;
  std::size_t len = 0;
  while (std::getline(iss, line)) {
    if (line.empty()) continue;
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckFailure);
}

TEST(Table, CsvEscapesCommas) {
  Table t;
  t.set_header({"k", "v"});
  t.add_row({"a,b", "2"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_NE(oss.str().find("\"a,b\""), std::string::npos);
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::pct(0.5, 0), "50%");
  EXPECT_EQ(Table::boolean(true), "yes");
  EXPECT_EQ(Table::boolean(false), "no");
  EXPECT_EQ(Table::sci(1234.5, 2).substr(0, 4), "1.23");
}

TEST(Table, EmptyTableStillPrints) {
  Table t("empty");
  std::ostringstream oss;
  t.print(oss);
  EXPECT_NE(oss.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace crusader::util
