#include "util/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "util/check.hpp"

namespace crusader::util {
namespace {

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Samples, QuantilesExact) {
  Samples s;
  for (double x : {4.0, 1.0, 3.0, 2.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(Samples, QuantileInterpolates) {
  Samples s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW((void)s.min(), CheckFailure);
  EXPECT_THROW((void)s.quantile(0.5), CheckFailure);
}

TEST(Samples, AddAllAndResort) {
  Samples s;
  s.add_all({3.0, 1.0});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // must invalidate the cached sort
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
}

TEST(LinearFit, ExactLine) {
  const auto fit = fit_linear({0, 1, 2, 3}, {1, 3, 5, 7});
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHighR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 * i + 2.0 + 0.01 * std::sin(i * 12.9898));
  }
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-3);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(LinearFit, ConstantXDegenerates) {
  const auto fit = fit_linear({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(LinearFit, MismatchedSizesThrow) {
  EXPECT_THROW((void)fit_linear({1, 2}, {1}), CheckFailure);
  EXPECT_THROW((void)fit_linear({1}, {1}), CheckFailure);
}

}  // namespace
}  // namespace crusader::util
