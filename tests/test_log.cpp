// Logger and trace-export coverage.

#include <algorithm>
#include <gtest/gtest.h>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/trace_io.hpp"
#include "util/log.hpp"

namespace crusader {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(util::log_level()) {}
  ~LogLevelGuard() { util::set_log_level(saved_); }

 private:
  util::LogLevel saved_;
};

TEST(Log, ThresholdFilters) {
  LogLevelGuard guard;
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // Below-threshold lines are dropped inside log_line; smoke only (output
  // goes to stderr, which we do not capture here).
  util::log_line(util::LogLevel::kDebug, "dropped");
  util::set_log_level(util::LogLevel::kOff);
  util::log_line(util::LogLevel::kError, "also dropped");
}

TEST(Log, ConcurrentEmissionNeverTearsLines) {
  // Regression for the emission lock in log_line: the line is built from
  // several stream inserts ("[", level, "] ", msg, '\n'), so without the
  // lock two threads' fragments interleave mid-line. Capture stderr and
  // assert every emitted line survives intact and exactly once.
  LogLevelGuard guard;
  util::set_log_level(util::LogLevel::kError);
  std::ostringstream captured;
  std::streambuf* saved = std::cerr.rdbuf(captured.rdbuf());

  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        // Assembled via += (GCC 12's -Wrestrict misfires on the
        // char* + temporary-string operator+ chain).
        std::string msg = "t";
        msg += std::to_string(t);
        msg += '-';
        msg += std::to_string(i);
        util::log_line(util::LogLevel::kError, msg);
      }
    });
  }
  for (auto& th : pool) th.join();
  std::cerr.rdbuf(saved);

  std::map<std::string, int> counts;
  std::istringstream lines(captured.str());
  std::string line;
  std::size_t total = 0;
  while (std::getline(lines, line)) {
    ++total;
    ASSERT_EQ(line.rfind("[ERROR] t", 0), 0u) << "torn line: " << line;
    ++counts[line.substr(8)];
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads) * kLines);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kLines; ++i) {
      std::string key = "t";
      key += std::to_string(t);
      key += '-';
      key += std::to_string(i);
      EXPECT_EQ(counts[key], 1) << "lost or duplicated: " << key;
    }
  }
}

TEST(Log, StreamMacroCompiles) {
  LogLevelGuard guard;
  util::set_log_level(util::LogLevel::kOff);
  CS_DEBUG << "value " << 42;  // must not evaluate visibly nor crash
  CS_WARN << "warn " << 3.14;
}

sim::PulseTrace demo_trace() {
  sim::PulseTrace trace(2, {false, true});
  trace.record(0, 1.0, 1.5);
  trace.record(0, 2.0, 2.5);
  trace.record(1, 1.25, 1.25);
  return trace;
}

TEST(TraceIo, PulsesCsvShape) {
  std::ostringstream oss;
  sim::write_pulses_csv(demo_trace(), oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("node,role,round,real_time,local_time"),
            std::string::npos);
  EXPECT_NE(out.find("0,honest,1,1,1.5"), std::string::npos);
  EXPECT_NE(out.find("1,faulty,1,1.25,1.25"), std::string::npos);
  // 3 pulses + header = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TraceIo, RoundsCsvHonestOnly) {
  std::ostringstream oss;
  sim::write_rounds_csv(demo_trace(), oss);
  const std::string out = oss.str();
  // Only node 0 is honest: skew is 0 for both of its rounds.
  EXPECT_NE(out.find("round,skew,min_pulse,max_pulse"), std::string::npos);
  EXPECT_NE(out.find("1,0,1,1"), std::string::npos);
  EXPECT_NE(out.find("2,0,2,2"), std::string::npos);
}

}  // namespace
}  // namespace crusader
