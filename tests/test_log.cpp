// Logger and trace-export coverage.

#include <algorithm>
#include <gtest/gtest.h>
#include <sstream>
#include <string>

#include "sim/trace_io.hpp"
#include "util/log.hpp"

namespace crusader {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(util::log_level()) {}
  ~LogLevelGuard() { util::set_log_level(saved_); }

 private:
  util::LogLevel saved_;
};

TEST(Log, ThresholdFilters) {
  LogLevelGuard guard;
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // Below-threshold lines are dropped inside log_line; smoke only (output
  // goes to stderr, which we do not capture here).
  util::log_line(util::LogLevel::kDebug, "dropped");
  util::set_log_level(util::LogLevel::kOff);
  util::log_line(util::LogLevel::kError, "also dropped");
}

TEST(Log, StreamMacroCompiles) {
  LogLevelGuard guard;
  util::set_log_level(util::LogLevel::kOff);
  CS_DEBUG << "value " << 42;  // must not evaluate visibly nor crash
  CS_WARN << "warn " << 3.14;
}

sim::PulseTrace demo_trace() {
  sim::PulseTrace trace(2, {false, true});
  trace.record(0, 1.0, 1.5);
  trace.record(0, 2.0, 2.5);
  trace.record(1, 1.25, 1.25);
  return trace;
}

TEST(TraceIo, PulsesCsvShape) {
  std::ostringstream oss;
  sim::write_pulses_csv(demo_trace(), oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("node,role,round,real_time,local_time"),
            std::string::npos);
  EXPECT_NE(out.find("0,honest,1,1,1.5"), std::string::npos);
  EXPECT_NE(out.find("1,faulty,1,1.25,1.25"), std::string::npos);
  // 3 pulses + header = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TraceIo, RoundsCsvHonestOnly) {
  std::ostringstream oss;
  sim::write_rounds_csv(demo_trace(), oss);
  const std::string out = oss.str();
  // Only node 0 is honest: skew is 0 for both of its rounds.
  EXPECT_NE(out.find("round,skew,min_pulse,max_pulse"), std::string::npos);
  EXPECT_NE(out.find("1,0,1,1"), std::string::npos);
  EXPECT_NE(out.find("2,0,2,2"), std::string::npos);
}

}  // namespace
}  // namespace crusader
