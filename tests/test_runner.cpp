#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runner/export.hpp"
#include "runner/scenario.hpp"

namespace crusader::runner {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.protocols = {baselines::ProtocolKind::kCps,
                    baselines::ProtocolKind::kSrikanthToueg};
  grid.ns = {4, 5};
  grid.fault_loads = {0, SweepGrid::kMaxResilience};
  grid.delays = {sim::DelayKind::kRandom};
  grid.strategies = {core::ByzStrategy::kCrash};
  grid.rounds = 6;
  grid.warmup = 2;
  return grid;
}

TEST(Scenario, GridExpansionCountAndOrder) {
  const auto specs = small_grid().expand();
  // 2 protocols × 2 n × 2 fault loads × 1 vartheta × 1 u × 1 delay; the
  // strategy axis collapses for fault-free points and has one entry anyway.
  ASSERT_EQ(specs.size(), 8u);
  // Outermost axis is the protocol: first half CPS, second half ST.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(specs[i].protocol, baselines::ProtocolKind::kCps);
  for (std::size_t i = 4; i < 8; ++i)
    EXPECT_EQ(specs[i].protocol, baselines::ProtocolKind::kSrikanthToueg);
  // kMaxResilience resolves to the protocol-appropriate bound.
  EXPECT_EQ(specs[1].f, sim::ModelParams::max_faults_signed(4));
  EXPECT_EQ(specs[1].f, specs[1].f_actual);
}

TEST(Scenario, FaultFreePointsIgnoreStrategyAxis) {
  auto grid = small_grid();
  grid.strategies = {core::ByzStrategy::kCrash, core::ByzStrategy::kSplit,
                     core::ByzStrategy::kReplay};
  const auto specs = grid.expand();
  // Fault-free points contribute 1 spec each; faulty points 3 each.
  EXPECT_EQ(specs.size(), 2u * 2u * (1u + 3u));
}

TEST(Scenario, CollapsedFaultLoadsDedupe) {
  // LW at n = 3 has max resilience 0, so {0, max} collapses to one spec —
  // not two identical worlds with identical keys and seeds.
  SweepGrid grid;
  grid.protocols = {baselines::ProtocolKind::kLynchWelch};
  grid.ns = {3};
  grid.fault_loads = {0, SweepGrid::kMaxResilience};
  EXPECT_EQ(grid.expand().size(), 1u);
}

TEST(Scenario, MaxResiliencePerProtocol) {
  EXPECT_EQ(max_resilience(baselines::ProtocolKind::kCps, 7), 3u);
  EXPECT_EQ(max_resilience(baselines::ProtocolKind::kSrikanthToueg, 7), 3u);
  EXPECT_EQ(max_resilience(baselines::ProtocolKind::kLynchWelch, 7), 2u);
}

TEST(Scenario, KeyIsStableAndAxisSensitive) {
  ScenarioSpec a;
  ScenarioSpec b;
  EXPECT_EQ(a.key(), b.key());
  b.n = a.n + 1;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.vartheta += 1e-9;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.delay = sim::DelayKind::kSplit;
  EXPECT_NE(a.key(), b.key());
}

TEST(Scenario, KeysDistinctAcrossGrid) {
  auto grid = small_grid();
  grid.varthetas = {1.005, 1.01};
  grid.us = {0.02, 0.05};
  const auto specs = grid.expand();
  std::set<std::uint64_t> keys;
  for (const auto& spec : specs) keys.insert(spec.key());
  EXPECT_EQ(keys.size(), specs.size());
}

TEST(Runner, SeedDerivationIsPositionIndependent) {
  const auto specs = small_grid().expand();
  // The seed depends on (base_seed, spec) only — not on grid position.
  for (const auto& spec : specs)
    EXPECT_EQ(scenario_seed(spec, 99), scenario_seed(spec, 99));
  EXPECT_NE(scenario_seed(specs[0], 99), scenario_seed(specs[0], 100));
  EXPECT_NE(scenario_seed(specs[0], 99), scenario_seed(specs[1], 99));
}

TEST(Runner, InfeasibleScenarioIsReportedNotRun) {
  ScenarioSpec spec;
  spec.vartheta = 2.0;  // far beyond Corollary 4's drift ceiling for CPS
  spec.u_tilde = spec.u;
  const auto result = run_scenario(spec);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(result.rounds_completed, 0u);
  // Metric contract: all doubles (incl. the bound) are NaN for such rows.
  EXPECT_TRUE(std::isnan(result.predicted_skew));
  EXPECT_TRUE(std::isnan(result.max_skew));
}

TEST(Runner, InvalidModelBecomesErrorNotCrash) {
  ScenarioSpec spec;
  spec.n = 4;
  spec.f = 4;  // f must be < n
  spec.f_actual = 4;
  const auto result = run_scenario(spec);
  EXPECT_FALSE(result.error.empty());
}

TEST(Runner, FaultFreeCpsWithinTheoremBound) {
  ScenarioSpec spec;
  spec.protocol = baselines::ProtocolKind::kCps;
  spec.n = 4;
  spec.f = 0;
  spec.f_actual = 0;
  spec.rounds = 8;
  spec.warmup = 2;
  const auto result = run_scenario(spec);
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.live);
  EXPECT_EQ(result.rounds_completed, spec.rounds);
  EXPECT_TRUE(result.within_bound)
      << "skew " << result.max_skew << " > bound " << result.predicted_skew;
  EXPECT_EQ(result.violations, 0u);
  EXPECT_GT(result.messages, 0u);
}

// The acceptance-criterion test: same specs + same seed must produce a
// byte-identical CSV no matter how many worker threads execute the sweep.
TEST(Runner, SweepCsvIdenticalAcrossThreadCounts) {
  const auto specs = small_grid().expand();

  RunnerOptions serial;
  serial.base_seed = 7;
  serial.threads = 1;
  const auto report1 = run_sweep(specs, serial);

  RunnerOptions parallel = serial;
  parallel.threads = 4;
  const auto report4 = run_sweep(specs, parallel);

  const std::string csv1 = to_csv(report1);
  const std::string csv4 = to_csv(report4);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);

  // And it really ran: every scenario feasible here completes its rounds.
  for (const auto& r : report1.results) {
    EXPECT_TRUE(r.error.empty()) << r.spec.name() << ": " << r.error;
    if (r.feasible) {
      EXPECT_TRUE(r.live) << r.spec.name();
    }
  }
}

TEST(Runner, ByProtocolSummaryCounts) {
  const auto specs = small_grid().expand();
  const auto report = run_sweep(specs, {});
  const auto summaries = report.by_protocol();
  ASSERT_EQ(summaries.size(), 2u);
  std::size_t total = 0;
  for (const auto& s : summaries) total += s.scenarios;
  EXPECT_EQ(total, specs.size());
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(Export, CsvHasHeaderAndOneRowPerScenario) {
  const auto specs = small_grid().expand();
  const auto report = run_sweep(specs, {});
  const std::string csv = to_csv(report);
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, specs.size() + 1);
  EXPECT_EQ(csv.rfind("scenario,protocol,world,topology,n,f,", 0), 0u);
}

TEST(Scenario, KeyForksDistinctSeedsForNewAxes) {
  // Two specs differing ONLY in a new axis must digest — and therefore
  // seed — differently, or inserting a world/topology/ũ axis would silently
  // reuse another scenario's randomness.
  ScenarioSpec base;
  ScenarioSpec other = base;
  other.world = WorldKind::kRelay;
  EXPECT_NE(base.key(), other.key());
  EXPECT_NE(scenario_seed(base, 1), scenario_seed(other, 1));

  ScenarioSpec ring = base;
  ring.world = WorldKind::kRelay;
  ScenarioSpec cube = ring;
  cube.topology = TopologyKind::kHypercube;
  EXPECT_NE(ring.key(), cube.key());
  EXPECT_NE(scenario_seed(ring, 1), scenario_seed(cube, 1));

  ScenarioSpec ut = base;
  ut.u_tilde = base.u_tilde + 0.1;
  EXPECT_NE(base.key(), ut.key());
  EXPECT_NE(scenario_seed(base, 1), scenario_seed(ut, 1));

  ScenarioSpec clocks = base;
  clocks.clocks = sim::ClockKind::kRandomWalk;
  EXPECT_NE(base.key(), clocks.key());
}

TEST(Scenario, UtildeIsAFirstClassGridAxis) {
  auto grid = small_grid();
  grid.fault_loads = {0};
  grid.u_tildes = {0.1, 0.2};
  const auto specs = grid.expand();
  // 2 protocols × 2 n × 1 fault × 2 ũ.
  ASSERT_EQ(specs.size(), 8u);
  std::set<double> uts;
  for (const auto& spec : specs) {
    EXPECT_GE(spec.u_tilde, spec.u);  // clamped into the model's [u, d]
    uts.insert(spec.u_tilde);
  }
  EXPECT_EQ(uts.size(), 2u);

  // An ũ below every u in the grid clamps onto u — and the clamped
  // duplicate of the tracking default dedupes against itself, not others.
  grid.u_tildes = {1e-6, 0.2};
  const auto clamped = grid.expand();
  for (const auto& spec : clamped) EXPECT_GE(spec.u_tilde, spec.u);
}

// Minimal CSV reader for round-trip checks: honors RFC-4180-style quoting as
// produced by the exporter.
std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        field += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(field);
  return out;
}

TEST(Export, CsvRoundTripsForEveryWorldKind) {
  std::vector<ScenarioSpec> specs(3);
  specs[0].world = WorldKind::kComplete;
  specs[1].world = WorldKind::kRelay;
  specs[1].topology = TopologyKind::kRing;
  specs[1].n = 6;
  specs[1].u = 0.02;
  specs[1].u_tilde = 0.02;
  specs[1].vartheta = 1.002;
  specs[2].world = WorldKind::kTheorem5;
  specs[2].n = 3;
  specs[2].f = 1;
  specs[2].u_tilde = 0.2;
  specs[2].vartheta = 1.05;
  specs[2].rounds = 30;
  for (auto& spec : specs) {
    if (spec.rounds == 20) spec.rounds = 5;
    spec.warmup = 1;
  }

  const auto report = run_sweep(specs, {});
  std::istringstream csv(to_csv(report));
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  const auto header = parse_csv_line(line);
  const auto column = [&](const std::string& name) {
    for (std::size_t i = 0; i < header.size(); ++i)
      if (header[i] == name) return i;
    ADD_FAILURE() << "missing CSV column " << name;
    return std::size_t{0};
  };
  const std::size_t world_col = column("world");
  const std::size_t topo_col = column("topology");
  const std::size_t ut_col = column("u_tilde");
  const std::size_t bound_col = column("predicted_skew");
  const std::size_t ratio_col = column("skew_ratio");

  std::size_t rows = 0;
  while (std::getline(csv, line)) {
    const auto& spec = specs.at(rows);
    const auto& result = report.results.at(rows);
    SCOPED_TRACE(spec.name());
    ASSERT_TRUE(result.error.empty()) << result.error;
    const auto row = parse_csv_line(line);
    ASSERT_EQ(row.size(), header.size());
    EXPECT_EQ(row[world_col], to_string(spec.world));
    EXPECT_EQ(row[topo_col], spec.world == WorldKind::kRelay
                                 ? to_string(spec.topology)
                                 : "-");
    EXPECT_EQ(std::stod(row[ut_col]), spec.u_tilde);
    // Every world exports its applicable bound and realized/bound ratio.
    EXPECT_EQ(std::stod(row[bound_col]), result.predicted_skew);
    EXPECT_EQ(std::stod(row[ratio_col]), result.skew_ratio);
    ++rows;
  }
  EXPECT_EQ(rows, specs.size());
}

TEST(Cli, EveryEnumeratorReachableFromFlags) {
  // Regression for the ROADMAP gap: the shared CLI parsers must round-trip
  // every enumerator of every axis (ClockKind::kCustom excepted — it needs
  // a caller-built clock vector no flag can express).
  for (const auto kind : {sim::DelayKind::kMax, sim::DelayKind::kMin,
                          sim::DelayKind::kRandom, sim::DelayKind::kSplit}) {
    const auto parsed = parse_delay_kind(sim::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << sim::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  for (const auto kind : {sim::ClockKind::kNominal, sim::ClockKind::kSpread,
                          sim::ClockKind::kRandomWalk}) {
    const auto parsed = parse_clock_kind(sim::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << sim::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_clock_kind("custom").has_value());
  for (const auto kind :
       {WorldKind::kComplete, WorldKind::kRelay, WorldKind::kTheorem5}) {
    const auto parsed = parse_world(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  for (const auto kind :
       {TopologyKind::kComplete, TopologyKind::kRing, TopologyKind::kChordalRing,
        TopologyKind::kRingOfCliques, TopologyKind::kHypercube,
        TopologyKind::kRandomConnected}) {
    const auto parsed = parse_topology(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  for (const auto kind :
       {relay::RelayFaultKind::kCrash, relay::RelayFaultKind::kMaxDelay,
        relay::RelayFaultKind::kReorder,
        relay::RelayFaultKind::kSelectiveDrop}) {
    const auto parsed = parse_relay_fault(relay::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << relay::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  for (const auto kind :
       {baselines::ProtocolKind::kCps, baselines::ProtocolKind::kLynchWelch,
        baselines::ProtocolKind::kSrikanthToueg,
        baselines::ProtocolKind::kFloodProbe}) {
    bool found = false;
    for (const auto alias : {"cps", "lw", "st", "probe"}) {
      const auto parsed = parse_protocol(alias);
      if (parsed && *parsed == kind) found = true;
    }
    EXPECT_TRUE(found) << baselines::to_string(kind);
  }
  for (const auto mode : {CryptoMode::kReal, CryptoMode::kAbstract}) {
    const auto parsed = parse_crypto_mode(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  for (const auto strategy : core::all_byz_strategies()) {
    const auto parsed = parse_byz_strategy(core::to_string(strategy));
    ASSERT_TRUE(parsed.has_value()) << core::to_string(strategy);
    EXPECT_EQ(*parsed, strategy);
  }
}

TEST(Cli, ParsersRejectUnknownSpellings) {
  EXPECT_FALSE(parse_world("mesh").has_value());
  EXPECT_FALSE(parse_topology("torus").has_value());
  EXPECT_FALSE(parse_topology("chordal_ring").has_value());  // dash, not _
  EXPECT_FALSE(parse_relay_fault("equivocate").has_value());
  EXPECT_FALSE(parse_relay_fault("maxdelay").has_value());
  EXPECT_FALSE(parse_relay_fault("").has_value());
  EXPECT_FALSE(parse_delay_kind("uniform").has_value());
  EXPECT_FALSE(parse_byz_strategy("st-accel").has_value());  // flag, not enum
  EXPECT_FALSE(parse_crypto_mode("symbolic").has_value());  // Pki kind, not mode
  EXPECT_FALSE(parse_crypto_mode("fast").has_value());
}

TEST(Cli, CustomDelaySpellingsRoundTrip) {
  // Every accepted spelling parses, and the parsed spec prints itself back.
  const auto fixed = parse_custom_delay("custom:fixed:0.25");
  ASSERT_TRUE(fixed.has_value());
  EXPECT_EQ(fixed->kind, CustomDelaySpec::Kind::kFixed);
  EXPECT_EQ(fixed->fraction, 0.25);
  EXPECT_EQ(fixed->spelling(), "custom:fixed:0.25");
  ASSERT_TRUE(parse_custom_delay(fixed->spelling()).has_value());

  const auto alternate = parse_custom_delay("custom:alternate");
  ASSERT_TRUE(alternate.has_value());
  EXPECT_EQ(alternate->kind, CustomDelaySpec::Kind::kAlternate);
  EXPECT_EQ(alternate->spelling(), "custom:alternate");

  const auto target = parse_custom_delay("custom:target:3");
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->kind, CustomDelaySpec::Kind::kTarget);
  EXPECT_EQ(target->target, 3u);
  EXPECT_EQ(target->spelling(), "custom:target:3");

  // The factory builds a live policy honoring the spec.
  util::Rng rng(1);
  sim::Message m{};
  auto policy = fixed->factory()();
  EXPECT_DOUBLE_EQ(policy->delay(0, 1, 0.0, m, 1.0, 2.0, rng), 1.25);
  auto targeted = target->factory()();
  EXPECT_DOUBLE_EQ(targeted->delay(0, 3, 0.0, m, 1.0, 2.0, rng), 2.0);
  EXPECT_DOUBLE_EQ(targeted->delay(0, 1, 0.0, m, 1.0, 2.0, rng), 1.0);
}

TEST(Cli, CustomDelayRejectsMalformedSpellings) {
  EXPECT_FALSE(parse_custom_delay("fixed:0.25").has_value());  // no custom:
  EXPECT_FALSE(parse_custom_delay("custom:").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:fixed").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:fixed:").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:fixed:abc").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:fixed:0.5x").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:fixed:1.5").has_value());   // > 1
  EXPECT_FALSE(parse_custom_delay("custom:fixed:-0.1").has_value());  // < 0
  EXPECT_FALSE(parse_custom_delay("custom:alternate:1").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:target").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:target:").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:target:-1").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:target:x").has_value());
  EXPECT_FALSE(parse_custom_delay("custom:jitter").has_value());
}

TEST(Cli, StrictNumericParsers) {
  // The CLI's numeric flags must reject what bare std::stod/std::stoul
  // accept: partial parses, wrapped negatives, inf/nan, and empties.
  EXPECT_EQ(parse_double_strict("1.5"), 1.5);
  EXPECT_EQ(parse_double_strict("-0.5"), -0.5);
  EXPECT_EQ(parse_double_strict("1e-3"), 1e-3);
  EXPECT_FALSE(parse_double_strict("").has_value());
  EXPECT_FALSE(parse_double_strict("abc").has_value());
  EXPECT_FALSE(parse_double_strict("1.5x").has_value());
  EXPECT_FALSE(parse_double_strict("1.5 ").has_value());
  EXPECT_FALSE(parse_double_strict("inf").has_value());
  EXPECT_FALSE(parse_double_strict("nan").has_value());

  EXPECT_EQ(parse_u64_strict("42"), 42u);
  EXPECT_EQ(parse_u64_strict("0"), 0u);
  EXPECT_FALSE(parse_u64_strict("").has_value());
  EXPECT_FALSE(parse_u64_strict("-3").has_value());  // stoul would wrap this
  EXPECT_FALSE(parse_u64_strict("+3").has_value());
  EXPECT_FALSE(parse_u64_strict("3.5").has_value());
  EXPECT_FALSE(parse_u64_strict("12,3").has_value());
  EXPECT_FALSE(parse_u64_strict("99999999999999999999999").has_value());
}

TEST(Scenario, CustomDelayAxisExpandsAndForksSeeds) {
  SweepGrid grid = small_grid();
  grid.protocols = {baselines::ProtocolKind::kCps};
  grid.ns = {4};
  grid.fault_loads = {0};
  grid.delays = {sim::DelayKind::kRandom};
  grid.custom_delays = {
      *parse_custom_delay("custom:fixed:0.25"),
      *parse_custom_delay("custom:alternate"),
  };
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 3u);  // random + 2 customs
  EXPECT_FALSE(specs[0].custom_delay.has_value());
  ASSERT_TRUE(specs[1].custom_delay.has_value());
  EXPECT_EQ(specs[1].custom_delay->kind, CustomDelaySpec::Kind::kFixed);
  ASSERT_TRUE(specs[2].custom_delay.has_value());
  EXPECT_EQ(specs[2].custom_delay->kind, CustomDelaySpec::Kind::kAlternate);

  // Digests (hence seeds) fork on the custom axis, including its params.
  std::set<std::uint64_t> keys;
  for (const auto& spec : specs) keys.insert(spec.key());
  EXPECT_EQ(keys.size(), specs.size());
  ScenarioSpec half = specs[1];
  half.custom_delay->fraction = 0.5;
  EXPECT_NE(half.key(), specs[1].key());

  // The spec names (CSV keys) carry the spelling, and so does the CSV's
  // delay column — the placeholder DelayKind underneath must never leak
  // and misattribute the adversary.
  EXPECT_NE(specs[1].name().find("delay=custom:fixed:0.25"),
            std::string::npos);
  {
    SweepReport report;
    report.results.emplace_back();
    report.results.back().spec = specs[1];
    const std::string csv = to_csv(report);
    EXPECT_NE(csv.find("custom:fixed:0.25"), std::string::npos);
    EXPECT_EQ(csv.find(",random,"), std::string::npos);
  }

  // And the scenarios actually run under the custom policy.
  const auto result = run_scenario(specs[1]);
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.within_bound);
}

TEST(Scenario, RelayFaultAndNewTopologiesForkDistinctSeeds) {
  ScenarioSpec base;
  base.world = WorldKind::kRelay;
  base.topology = TopologyKind::kChordalRing;
  base.f = 1;
  base.f_actual = 1;

  ScenarioSpec delayed = base;
  delayed.relay_fault = relay::RelayFaultKind::kMaxDelay;
  EXPECT_NE(base.key(), delayed.key());
  EXPECT_NE(scenario_seed(base, 1), scenario_seed(delayed, 1));

  ScenarioSpec cliques = base;
  cliques.topology = TopologyKind::kRingOfCliques;
  EXPECT_NE(base.key(), cliques.key());
  EXPECT_NE(scenario_seed(base, 1), scenario_seed(cliques, 1));
}

TEST(Scenario, MaxTopologyFaultsForNewFamilies) {
  EXPECT_EQ(max_topology_faults(TopologyKind::kChordalRing, 8), 3u);
  EXPECT_EQ(max_topology_faults(TopologyKind::kChordalRing, 4), 2u);
  // n = 3 degenerates to the triangle K3: buildable and survives 1 fault.
  EXPECT_EQ(max_topology_faults(TopologyKind::kChordalRing, 3), 1u);
  EXPECT_EQ(max_topology_faults(TopologyKind::kRingOfCliques, 8), 3u);
  EXPECT_EQ(max_topology_faults(TopologyKind::kRingOfCliques, 12), 3u);
  // Shapes the factory rejects resolve to zero survivable faults.
  EXPECT_EQ(max_topology_faults(TopologyKind::kRingOfCliques, 10), 0u);
  EXPECT_EQ(max_topology_faults(TopologyKind::kRingOfCliques, 4), 0u);
}

TEST(Export, JsonWellFormedEnough) {
  ScenarioSpec spec;  // default CPS fault-free
  spec.rounds = 4;
  spec.warmup = 1;
  SweepReport report;
  report.results.push_back(run_scenario(spec));
  std::ostringstream os;
  write_json(os, report);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"protocol\": \"CPS\""), std::string::npos);
  EXPECT_NE(json.find("\"within_bound\": 1"), std::string::npos);
}

}  // namespace
}  // namespace crusader::runner
