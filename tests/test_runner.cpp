#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runner/export.hpp"
#include "runner/scenario.hpp"

namespace crusader::runner {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.protocols = {baselines::ProtocolKind::kCps,
                    baselines::ProtocolKind::kSrikanthToueg};
  grid.ns = {4, 5};
  grid.fault_loads = {0, SweepGrid::kMaxResilience};
  grid.delays = {sim::DelayKind::kRandom};
  grid.strategies = {core::ByzStrategy::kCrash};
  grid.rounds = 6;
  grid.warmup = 2;
  return grid;
}

TEST(Scenario, GridExpansionCountAndOrder) {
  const auto specs = small_grid().expand();
  // 2 protocols × 2 n × 2 fault loads × 1 vartheta × 1 u × 1 delay; the
  // strategy axis collapses for fault-free points and has one entry anyway.
  ASSERT_EQ(specs.size(), 8u);
  // Outermost axis is the protocol: first half CPS, second half ST.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(specs[i].protocol, baselines::ProtocolKind::kCps);
  for (std::size_t i = 4; i < 8; ++i)
    EXPECT_EQ(specs[i].protocol, baselines::ProtocolKind::kSrikanthToueg);
  // kMaxResilience resolves to the protocol-appropriate bound.
  EXPECT_EQ(specs[1].f, sim::ModelParams::max_faults_signed(4));
  EXPECT_EQ(specs[1].f, specs[1].f_actual);
}

TEST(Scenario, FaultFreePointsIgnoreStrategyAxis) {
  auto grid = small_grid();
  grid.strategies = {core::ByzStrategy::kCrash, core::ByzStrategy::kSplit,
                     core::ByzStrategy::kReplay};
  const auto specs = grid.expand();
  // Fault-free points contribute 1 spec each; faulty points 3 each.
  EXPECT_EQ(specs.size(), 2u * 2u * (1u + 3u));
}

TEST(Scenario, CollapsedFaultLoadsDedupe) {
  // LW at n = 3 has max resilience 0, so {0, max} collapses to one spec —
  // not two identical worlds with identical keys and seeds.
  SweepGrid grid;
  grid.protocols = {baselines::ProtocolKind::kLynchWelch};
  grid.ns = {3};
  grid.fault_loads = {0, SweepGrid::kMaxResilience};
  EXPECT_EQ(grid.expand().size(), 1u);
}

TEST(Scenario, MaxResiliencePerProtocol) {
  EXPECT_EQ(max_resilience(baselines::ProtocolKind::kCps, 7), 3u);
  EXPECT_EQ(max_resilience(baselines::ProtocolKind::kSrikanthToueg, 7), 3u);
  EXPECT_EQ(max_resilience(baselines::ProtocolKind::kLynchWelch, 7), 2u);
}

TEST(Scenario, KeyIsStableAndAxisSensitive) {
  ScenarioSpec a;
  ScenarioSpec b;
  EXPECT_EQ(a.key(), b.key());
  b.n = a.n + 1;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.vartheta += 1e-9;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.delay = sim::DelayKind::kSplit;
  EXPECT_NE(a.key(), b.key());
}

TEST(Scenario, KeysDistinctAcrossGrid) {
  auto grid = small_grid();
  grid.varthetas = {1.005, 1.01};
  grid.us = {0.02, 0.05};
  const auto specs = grid.expand();
  std::set<std::uint64_t> keys;
  for (const auto& spec : specs) keys.insert(spec.key());
  EXPECT_EQ(keys.size(), specs.size());
}

TEST(Runner, SeedDerivationIsPositionIndependent) {
  const auto specs = small_grid().expand();
  // The seed depends on (base_seed, spec) only — not on grid position.
  for (const auto& spec : specs)
    EXPECT_EQ(scenario_seed(spec, 99), scenario_seed(spec, 99));
  EXPECT_NE(scenario_seed(specs[0], 99), scenario_seed(specs[0], 100));
  EXPECT_NE(scenario_seed(specs[0], 99), scenario_seed(specs[1], 99));
}

TEST(Runner, InfeasibleScenarioIsReportedNotRun) {
  ScenarioSpec spec;
  spec.vartheta = 2.0;  // far beyond Corollary 4's drift ceiling for CPS
  spec.u_tilde = spec.u;
  const auto result = run_scenario(spec);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(result.rounds_completed, 0u);
  // Metric contract: all doubles (incl. the bound) are NaN for such rows.
  EXPECT_TRUE(std::isnan(result.predicted_skew));
  EXPECT_TRUE(std::isnan(result.max_skew));
}

TEST(Runner, InvalidModelBecomesErrorNotCrash) {
  ScenarioSpec spec;
  spec.n = 4;
  spec.f = 4;  // f must be < n
  spec.f_actual = 4;
  const auto result = run_scenario(spec);
  EXPECT_FALSE(result.error.empty());
}

TEST(Runner, FaultFreeCpsWithinTheoremBound) {
  ScenarioSpec spec;
  spec.protocol = baselines::ProtocolKind::kCps;
  spec.n = 4;
  spec.f = 0;
  spec.f_actual = 0;
  spec.rounds = 8;
  spec.warmup = 2;
  const auto result = run_scenario(spec);
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.live);
  EXPECT_EQ(result.rounds_completed, spec.rounds);
  EXPECT_TRUE(result.within_bound)
      << "skew " << result.max_skew << " > bound " << result.predicted_skew;
  EXPECT_EQ(result.violations, 0u);
  EXPECT_GT(result.messages, 0u);
}

// The acceptance-criterion test: same specs + same seed must produce a
// byte-identical CSV no matter how many worker threads execute the sweep.
TEST(Runner, SweepCsvIdenticalAcrossThreadCounts) {
  const auto specs = small_grid().expand();

  RunnerOptions serial;
  serial.base_seed = 7;
  serial.threads = 1;
  const auto report1 = run_sweep(specs, serial);

  RunnerOptions parallel = serial;
  parallel.threads = 4;
  const auto report4 = run_sweep(specs, parallel);

  const std::string csv1 = to_csv(report1);
  const std::string csv4 = to_csv(report4);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);

  // And it really ran: every scenario feasible here completes its rounds.
  for (const auto& r : report1.results) {
    EXPECT_TRUE(r.error.empty()) << r.spec.name() << ": " << r.error;
    if (r.feasible) {
      EXPECT_TRUE(r.live) << r.spec.name();
    }
  }
}

TEST(Runner, ByProtocolSummaryCounts) {
  const auto specs = small_grid().expand();
  const auto report = run_sweep(specs, {});
  const auto summaries = report.by_protocol();
  ASSERT_EQ(summaries.size(), 2u);
  std::size_t total = 0;
  for (const auto& s : summaries) total += s.scenarios;
  EXPECT_EQ(total, specs.size());
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(Export, CsvHasHeaderAndOneRowPerScenario) {
  const auto specs = small_grid().expand();
  const auto report = run_sweep(specs, {});
  const std::string csv = to_csv(report);
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, specs.size() + 1);
  EXPECT_EQ(csv.rfind("scenario,protocol,n,f,", 0), 0u);
}

TEST(Export, JsonWellFormedEnough) {
  ScenarioSpec spec;  // default CPS fault-free
  spec.rounds = 4;
  spec.warmup = 1;
  SweepReport report;
  report.results.push_back(run_scenario(spec));
  std::ostringstream os;
  write_json(os, report);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"protocol\": \"CPS\""), std::string::npos);
  EXPECT_NE(json.find("\"within_bound\": 1"), std::string::npos);
}

}  // namespace
}  // namespace crusader::runner
