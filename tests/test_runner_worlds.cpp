// Multi-world sweep runner: the relay (Appendix A) and Theorem-5 worlds are
// driven by the same ScenarioSpec/run_sweep machinery as the complete graph,
// and every world's realized skew conforms to its theoretical bound — the
// Theorem-17 upper bound evaluated at (d_eff, u_eff) for relay topologies,
// the 2ũ/3 lower bound for the triple-execution construction.

#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "relay/topology.hpp"
#include "runner/export.hpp"
#include "runner/scenario.hpp"

namespace crusader::runner {
namespace {

// --- Relay world: bound conformance over a topology × ϑ × u_hop grid -------

TEST(RelayWorldSweep, BoundConformanceOverTopologyGrid) {
  SweepGrid grid;
  grid.worlds = {WorldKind::kRelay};
  grid.protocols = {baselines::ProtocolKind::kCps};
  grid.ns = {8};
  grid.fault_loads = {0};
  grid.topologies = {TopologyKind::kRing, TopologyKind::kHypercube};
  grid.varthetas = {1.001, 1.005};
  grid.us = {0.01, 0.02};
  grid.rounds = 6;
  grid.warmup = 2;
  const auto specs = grid.expand();
  // 2 topologies × 2 ϑ × 2 u_hop, one delay/clock kind each.
  ASSERT_EQ(specs.size(), 8u);

  const auto report = run_sweep(specs, {});
  for (const auto& r : report.results) {
    SCOPED_TRACE(r.spec.name());
    ASSERT_TRUE(r.error.empty()) << r.error;
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(r.live);
    EXPECT_EQ(r.rounds_completed, grid.rounds);
    // Fault-free skew obeys the Theorem-17 bound computed from the
    // effective parameters the flood overlay presents to the protocol.
    EXPECT_TRUE(r.within_bound)
        << "skew " << r.max_skew << " > bound " << r.predicted_skew;
    ASSERT_TRUE(std::isfinite(r.skew_ratio));
    EXPECT_LE(r.skew_ratio, 1.0 + 1e-9);
    // Effective model bookkeeping: d_eff = D_f·d_hop with the documented
    // fault-free distances (8-ring diameter 4, 3-cube diameter 3), and
    // u_eff = D_f·u_hop + (ϑ−1)·D_f·d_hop.
    const std::uint32_t expect_hops =
        r.spec.topology == TopologyKind::kRing ? 4u : 3u;
    EXPECT_EQ(r.worst_hops, expect_hops);
    EXPECT_DOUBLE_EQ(r.d_eff, expect_hops * r.spec.d);
    EXPECT_NEAR(r.u_eff,
                expect_hops * r.spec.u +
                    (r.spec.vartheta - 1.0) * expect_hops * r.spec.d,
                1e-12);
    EXPECT_GT(r.messages, 0u);  // physical (per-hop) message accounting
  }
}

TEST(RelayWorldSweep, CrashedRelaysStayWithinEffectiveBound) {
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.topology = TopologyKind::kHypercube;
  spec.n = 8;
  spec.f = 2;  // 3-cube is 3-connected: survives 2 faults
  spec.f_actual = 2;
  spec.u = 0.02;
  spec.u_tilde = 0.02;
  spec.vartheta = 1.002;
  spec.rounds = 6;
  spec.warmup = 2;
  const auto r = run_scenario(spec);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.live);
  EXPECT_TRUE(r.within_bound)
      << "skew " << r.max_skew << " > bound " << r.predicted_skew;
}

TEST(RelayWorldSweep, RandomTopologyIsDeterministicInSpecAndSeed) {
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.topology = TopologyKind::kRandomConnected;
  spec.n = 8;
  spec.f = 2;
  spec.f_actual = 2;
  spec.u = 0.02;
  spec.u_tilde = 0.02;
  spec.vartheta = 1.002;
  spec.rounds = 5;
  spec.warmup = 1;
  const auto a = run_scenario(spec);
  const auto b = run_scenario(spec);
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_TRUE(a.feasible);
  EXPECT_TRUE(a.within_bound);
  // The generated graph (hence D_f, the bound, and every metric) is a pure
  // function of (base_seed, spec).
  EXPECT_EQ(a.worst_hops, b.worst_hops);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.max_skew, b.max_skew);
  EXPECT_DOUBLE_EQ(a.predicted_skew, b.predicted_skew);
}

TEST(RelayWorldSweep, RandomWalkClocksRunnable) {
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.topology = TopologyKind::kRing;
  spec.n = 6;
  spec.clocks = sim::ClockKind::kRandomWalk;
  spec.u = 0.02;
  spec.u_tilde = 0.02;
  spec.vartheta = 1.002;
  spec.rounds = 5;
  spec.warmup = 1;
  const auto r = run_scenario(spec);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.live);
  EXPECT_TRUE(r.within_bound);
}

TEST(RelayWorldSweep, HypercubeRejectsNonPowerOfTwo) {
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.topology = TopologyKind::kHypercube;
  spec.n = 6;
  const auto r = run_scenario(spec);
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("power of two"), std::string::npos) << r.error;
}

TEST(Topology, HypercubeAndRandomConnectedFactories) {
  const auto cube = relay::Topology::hypercube(3);
  EXPECT_EQ(cube.n(), 8u);
  EXPECT_EQ(cube.edge_count(), 12u);  // n·dim/2
  EXPECT_TRUE(cube.survives_faults(2));
  EXPECT_EQ(cube.worst_case_distance(0), 3u);  // diameter = dim

  const auto rand_topo = relay::Topology::random_connected(8, 2, 42);
  EXPECT_TRUE(rand_topo.survives_faults(2));
  // Deterministic in the seed, different across seeds in general.
  const auto again = relay::Topology::random_connected(8, 2, 42);
  EXPECT_EQ(rand_topo.edge_count(), again.edge_count());
}

// --- Theorem-5 world: the lower bound is realized for every ũ > u ----------

TEST(Theorem5Sweep, BoundHoldsAcrossUtildeGrid) {
  SweepGrid grid;
  grid.worlds = {WorldKind::kTheorem5};
  grid.protocols = {baselines::ProtocolKind::kCps};
  grid.us = {0.05};
  grid.u_tildes = {0.1, 0.2, 0.3};  // all ũ > u
  grid.varthetas = {1.05};
  grid.rounds = 40;
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 3u);

  const auto report = run_sweep(specs, {});
  for (const auto& r : report.results) {
    SCOPED_TRACE(r.spec.name());
    ASSERT_TRUE(r.error.empty()) << r.error;
    ASSERT_TRUE(r.feasible);
    EXPECT_GT(r.spec.u_tilde, r.spec.u);
    // The construction realizes the 2ũ/3 bound (within_bound records
    // bound_holds for this world) and the CSV ratio reflects it.
    EXPECT_TRUE(r.within_bound)
        << "realized " << r.max_skew << " < bound " << r.predicted_skew;
    EXPECT_NEAR(r.predicted_skew, r.spec.model().theorem5_bound(), 1e-12);
    ASSERT_TRUE(std::isfinite(r.skew_ratio));
    EXPECT_GE(r.skew_ratio, 1.0 - 1e-4);
  }
}

TEST(Theorem5Sweep, GridPinsConstructionShape) {
  SweepGrid grid;
  grid.worlds = {WorldKind::kTheorem5};
  grid.protocols = {baselines::ProtocolKind::kCps};
  grid.ns = {4, 7, 9};  // ignored: the construction is 3 nodes, 1 faulty
  grid.delays = {sim::DelayKind::kMax, sim::DelayKind::kMin};   // ignored
  grid.topologies = {TopologyKind::kRing, TopologyKind::kRing}; // ignored
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 1u);  // collapsed axes dedupe by digest
  EXPECT_EQ(specs[0].n, 3u);
  EXPECT_EQ(specs[0].f, 1u);
  EXPECT_EQ(specs[0].f_actual, 0u);
}

TEST(Theorem5Sweep, InfeasibleModelReportedNotThrown) {
  ScenarioSpec spec;
  spec.world = WorldKind::kTheorem5;
  spec.n = 3;
  spec.f = 1;
  spec.vartheta = 2.0;  // beyond every protocol's drift ceiling
  spec.u_tilde = spec.u;
  const auto r = run_scenario(spec);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(std::isnan(r.predicted_skew));
}

// --- Mixed-world sweeps: determinism and the regression gate ---------------

std::vector<ScenarioSpec> mixed_world_specs() {
  SweepGrid grid;
  grid.worlds = {WorldKind::kComplete, WorldKind::kRelay,
                 WorldKind::kTheorem5};
  grid.protocols = {baselines::ProtocolKind::kCps};
  grid.ns = {8};
  grid.fault_loads = {0, SweepGrid::kMaxResilience};
  grid.topologies = {TopologyKind::kRing, TopologyKind::kHypercube};
  grid.us = {0.02};
  grid.u_tildes = {0.2};
  // ϑ sets the Theorem-5 clock-ramp length 2ũ/(3(ϑ−1)); keep it short
  // enough that the construction settles well inside `rounds`.
  grid.varthetas = {1.02};
  grid.rounds = 12;
  grid.warmup = 3;
  return grid.expand();
}

TEST(MixedWorldSweep, CsvByteIdenticalAcrossThreadCounts) {
  const auto specs = mixed_world_specs();
  ASSERT_GT(specs.size(), 4u);
  std::set<WorldKind> worlds;
  for (const auto& spec : specs) worlds.insert(spec.world);
  ASSERT_EQ(worlds.size(), 3u) << "sweep must mix all three worlds";

  RunnerOptions serial;
  serial.base_seed = 11;
  serial.threads = 1;
  const auto report1 = run_sweep(specs, serial);

  RunnerOptions parallel = serial;
  parallel.threads = 4;
  const auto report4 = run_sweep(specs, parallel);

  const std::string csv1 = to_csv(report1);
  const std::string csv4 = to_csv(report4);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(report1.error_count(), 0u);
}

TEST(MixedWorldSweep, GateCountsOutOfSpecRatios) {
  // Hand-built results: the gate must read skew_ratio for upper-bound
  // worlds, bound_holds (within_bound) for theorem5, skip infeasible rows
  // (the protocol provably cannot run there), and count errored/timed-out
  // rows at EVERY ratio — a green gate means every cell actually ran.
  SweepReport report;

  ScenarioResult ok;
  ok.feasible = true;
  ok.rounds_completed = 5;
  ok.skew_ratio = 0.8;
  ok.within_bound = true;
  report.results.push_back(ok);

  ScenarioResult hot = ok;
  hot.skew_ratio = 1.4;  // above bound but below a loose gate
  hot.within_bound = false;
  report.results.push_back(hot);

  ScenarioResult lb = ok;
  lb.spec.world = WorldKind::kTheorem5;
  lb.skew_ratio = 0.5;  // ratio is NOT the gate signal for theorem5...
  lb.within_bound = false;  // ...bound_holds is
  report.results.push_back(lb);

  ScenarioResult infeasible;
  infeasible.feasible = false;
  infeasible.skew_ratio = 99.0;
  report.results.push_back(infeasible);

  ScenarioResult errored = ok;  // perfect ratio, but the cell crashed
  errored.error = "boom";
  report.results.push_back(errored);

  ScenarioResult hung = ok;  // perfect ratio, but the budget aborted it
  hung.timed_out = true;
  report.results.push_back(hung);

  EXPECT_EQ(count_gate_violations(report, 2.0), 3u);  // lb + errored + hung
  EXPECT_EQ(count_gate_violations(report, 1.0), 4u);  // + hot
  EXPECT_EQ(count_gate_violations(report, 0.5), 5u);  // + ok

  EXPECT_FALSE(violates_gate(ok, 1.0));
  EXPECT_FALSE(violates_gate(infeasible, 1.0));
  EXPECT_TRUE(violates_gate(errored, 1.0));
  EXPECT_TRUE(violates_gate(hung, 1.0));

  // Realizing the bound exactly is conformant: a protocol whose worst case
  // IS the bound (the flood probe under split delays hits skew == u) lands
  // at ratio 1 + O(ulp), and --gate=1.0 must not trip on that.
  ScenarioResult at_bound = ok;
  at_bound.skew_ratio = 1.0 + 1e-14;
  at_bound.within_bound = true;
  EXPECT_FALSE(violates_gate(at_bound, 1.0));
}

TEST(MixedWorldSweep, GateOnRealSweepPassesAtOne) {
  const auto specs = mixed_world_specs();
  const auto report = run_sweep(specs, {});
  EXPECT_EQ(report.error_count(), 0u);
  // Every world conforms to its bound, so a ratio gate of 1.0 is clean and
  // an absurdly tight gate trips every completed upper-bound scenario.
  EXPECT_EQ(count_gate_violations(report, 1.0), 0u);
  EXPECT_GT(count_gate_violations(report, 1e-9), 0u);
}

}  // namespace
}  // namespace crusader::runner
