// Lynch–Welch baseline [25]: converges with skew ≤ S_lw for f < n/3, and is
// breakable by a two-faced timing adversary at f ≥ n/3 — the resilience
// crossover that motivates the paper.

#include "baselines/lynch_welch.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

#include "core/adversaries.hpp"
#include "helpers.hpp"

namespace crusader::baselines {
namespace {

struct LwCase {
  std::uint32_t n;
  std::uint32_t f_actual;
  core::ByzStrategy strategy;
  std::uint64_t seed;
};

class LwWithinResilience : public ::testing::TestWithParam<LwCase> {};

TEST_P(LwWithinResilience, SkewBoundedAndLive) {
  const auto c = GetParam();
  const auto model = crusader::testing::small_model(
      c.n, sim::ModelParams::max_faults_plain(c.n));
  const auto setup = make_setup(ProtocolKind::kLynchWelch, model);
  ASSERT_TRUE(setup.feasible);

  const std::size_t rounds = 20;
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kLynchWelch, model, c.f_actual, c.strategy, c.seed, rounds,
      sim::ClockKind::kSpread, sim::DelayKind::kRandom,
      /*late_shift=*/0.2 * setup.lw.accept_window, /*split_shift=*/0.0);

  ASSERT_TRUE(result.trace.live(rounds));
  EXPECT_LE(result.trace.max_skew(), setup.lw.S + 1e-9);
}

std::vector<LwCase> lw_cases() {
  std::vector<LwCase> cases;
  std::uint64_t seed = 400;
  for (std::uint32_t n : {4u, 7u, 10u}) {
    const std::uint32_t f = sim::ModelParams::max_faults_plain(n);
    for (auto strategy :
         {core::ByzStrategy::kCrash, core::ByzStrategy::kPullEarly,
          core::ByzStrategy::kPullLate, core::ByzStrategy::kSplit}) {
      cases.push_back(LwCase{n, f, strategy, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LwWithinResilience, ::testing::ValuesIn(lw_cases()),
    [](const ::testing::TestParamInfo<LwCase>& info) {
      const auto& c = info.param;
      std::string name = core::to_string(c.strategy);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return "n" + std::to_string(c.n) + "_f" + std::to_string(c.f_actual) +
             "_" + name;
    });

TEST(LynchWelch, FaultFreeContractsFromInitialOffset) {
  const auto model = crusader::testing::small_model(4, 1);
  const auto setup = make_setup(ProtocolKind::kLynchWelch, model);
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kLynchWelch, model, 0, core::ByzStrategy::kCrash, 9, 25);
  ASSERT_TRUE(result.trace.live(25));
  const auto skews = result.trace.skews();
  double late = 0.0;
  for (std::size_t r = 15; r < skews.size(); ++r)
    late = std::max(late, skews[r]);
  EXPECT_LT(late, setup.lw.S / 2.0);
}

/// Runs LW at f_actual = 2 = ⌈n/3⌉ for n = 6 (beyond its f < n/3 guarantee,
/// discard count still ⌈n/3⌉−1 = 1) under the two-faced split-timing attack
/// with coordinated split delays; returns the steady-state skew.
double lw_steady_under_attack(double split_shift, std::uint64_t seed) {
  const std::uint32_t n = 6;
  auto model = crusader::testing::small_model(
      n, sim::ModelParams::max_faults_signed(n));  // allow 2 faulty in-model
  const auto setup = make_setup(ProtocolKind::kLynchWelch, model);
  CS_CHECK(setup.feasible);

  LwConfig config;
  config.params = setup.lw;
  config.f = sim::ModelParams::max_faults_plain(n);
  sim::HonestFactory honest = [config](NodeId) {
    return std::make_unique<LynchWelchNode>(config);
  };
  auto byz = core::make_byzantine_factory(core::ByzStrategy::kSplit, honest,
                                          seed, 0.0, split_shift);
  auto world_config = crusader::testing::world_config(model, setup, 40, seed);
  world_config.faulty = sim::default_faulty_set(2);
  world_config.delay_kind = sim::DelayKind::kSplit;
  sim::World world(world_config, honest, byz);
  return world.run().trace.max_skew(15);
}

TEST(LynchWelch, DegradedBeyondOneThirdByTwoFacedTiming) {
  // At f = ⌈n/3⌉ the two-faced timing attack sustains a skew floor that
  // grows with the attack magnitude — the convergence guarantee is gone.
  // (The floor is bounded by the acceptance window, so LW degrades rather
  // than diverges; below the threshold the same attack is impossible.)
  const double fault_free = [&] {
    const auto model = crusader::testing::small_model(6, 2);
    const auto result = crusader::testing::run_protocol(
        ProtocolKind::kLynchWelch, model, 0, core::ByzStrategy::kCrash, 13,
        40, sim::ClockKind::kSpread, sim::DelayKind::kSplit);
    return result.trace.max_skew(15);
  }();

  const double mild = lw_steady_under_attack(0.10, 13);
  const double strong = lw_steady_under_attack(0.20, 13);
  EXPECT_GT(mild, 1.2 * fault_free);
  EXPECT_GT(strong, 2.0 * fault_free);
  EXPECT_GT(strong, mild);  // degradation scales with the attack
}

TEST(LynchWelch, SameAttackDoesNotDegradeCps) {
  // The identical attack against CPS at the same fault count: the echo
  // guard converts two-faced timing into ⊥, so the steady-state skew stays
  // flat regardless of the attack magnitude (and within S at all times).
  const std::uint32_t n = 6;
  const auto model = crusader::testing::small_model(
      n, sim::ModelParams::max_faults_signed(n));
  const auto setup = make_setup(ProtocolKind::kCps, model);

  std::vector<double> steady;
  for (double shift : {0.10, 0.20, 0.30}) {
    const auto result = crusader::testing::run_protocol(
        ProtocolKind::kCps, model, 2, core::ByzStrategy::kSplit, 13, 40,
        sim::ClockKind::kSpread, sim::DelayKind::kSplit, 0.0, shift);
    ASSERT_TRUE(result.trace.live(40));
    EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
    steady.push_back(result.trace.max_skew(15));
  }
  // Flat: the strongest attack gains less than 50% over the mildest.
  EXPECT_LT(steady.back(), 1.5 * steady.front() + 1e-9);
  // And far below the LW degradation at the same fault count.
  EXPECT_LT(steady.back(), lw_steady_under_attack(0.20, 13));
}

TEST(LynchWelch, StatsTrackMissingEstimates) {
  const auto model = crusader::testing::small_model(4, 1);
  const auto setup = make_setup(ProtocolKind::kLynchWelch, model);
  std::vector<LynchWelchNode*> nodes(model.n, nullptr);
  LwConfig config;
  config.params = setup.lw;
  sim::HonestFactory honest = [&nodes, config](NodeId v) {
    auto node = std::make_unique<LynchWelchNode>(config);
    nodes[v] = node.get();
    return node;
  };
  auto byz = core::make_byzantine_factory(core::ByzStrategy::kCrash, honest, 1);
  auto world_config = crusader::testing::world_config(model, setup, 10, 2);
  world_config.faulty = {3};
  sim::World world(world_config, honest, byz);
  (void)world.run();
  for (NodeId v = 0; v < 3; ++v) {
    ASSERT_NE(nodes[v], nullptr);
    EXPECT_GT(nodes[v]->stats().missing_estimates, 0u);
    EXPECT_EQ(nodes[v]->stats().negative_waits, 0u);
  }
}

TEST(LynchWelch, InfeasibleParamsRejected) {
  LwConfig config;  // params default-constructed: infeasible
  EXPECT_THROW(LynchWelchNode{config}, util::CheckFailure);
}

}  // namespace
}  // namespace crusader::baselines
