#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace crusader::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule(5.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EqualTimesFifoAcrossSlotReuse) {
  // Slot recycling must not affect equal-time ordering: the tie-break is the
  // schedule sequence, not the (reused) slot index.
  EventQueue q;
  std::vector<int> order;
  const EventId a = q.schedule(5.0, [&] { order.push_back(0); });
  q.cancel(a);
  // Reuses a's slot, but was scheduled after b below would have been...
  q.schedule(5.0, [&] { order.push_back(1); });
  q.schedule(5.0, [&] { order.push_back(2); });
  const EventId c = q.schedule(4.0, [&] { order.push_back(3); });
  q.cancel(c);
  q.schedule(5.0, [&] { order.push_back(4); });  // reuses c's slot
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, StaleIdCannotCancelSlotReuser) {
  // Generation tags: after a slot is retired and reused, the old id must be
  // dead — cancelling it is a no-op and must not kill the new occupant.
  EventQueue q;
  bool ran = false;
  const EventId old_id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(old_id));
  const EventId new_id = q.schedule(2.0, [&] { ran = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.pending(), 1u);
  q.pop_and_run();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, FiredIdIsStale) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.cancel(id));
  // The slot is recycled for the next event; the old id stays dead.
  bool ran = false;
  q.schedule(2.0, [&] { ran = true; });
  EXPECT_FALSE(q.cancel(id));
  q.pop_and_run();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  const EventId early = q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] {
    order.push_back(1);
    q.schedule(2.0, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PendingCount) {
  EventQueue q;
  EXPECT_EQ(q.pending(), 0u);
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ScheduledCountIsLifetimeNotIds) {
  // scheduled_count() counts schedule() calls over the queue's lifetime; it
  // is monotone even though ids (slots) are recycled.
  EventQueue q;
  EXPECT_EQ(q.scheduled_count(), 0u);
  const EventId a = q.schedule(1.0, [] {});
  q.cancel(a);
  q.schedule(1.0, [] {});  // reuses a's slot
  EXPECT_EQ(q.scheduled_count(), 2u);
  q.pop_and_run();
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.scheduled_count(), 3u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EmptyPopThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop_and_run(), util::CheckFailure);
}

TEST(EventQueue, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1.0, EventFn{}), util::CheckFailure);
}

TEST(EventQueue, NonFiniteTimeRejected) {
  EventQueue q;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(q.schedule(nan, [] {}), util::CheckFailure);
  EXPECT_THROW(q.schedule(inf, [] {}), util::CheckFailure);
  EXPECT_THROW(q.schedule(-inf, [] {}), util::CheckFailure);
  // A rejected schedule must not leak a slot or count as scheduled.
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.scheduled_count(), 0u);
  EXPECT_EQ(q.slab_capacity(), 0u);
}

// The memory-leak regression: a million schedule/cancel/pop cycles with at
// most ~1e3 events pending must keep storage O(pending), not O(scheduled).
TEST(EventQueue, StressMemoryBounded) {
  constexpr std::uint64_t kTotal = 1'000'000;
  constexpr std::size_t kMaxPending = 1'000;

  EventQueue q;
  util::Rng rng(0xC0FFEE);
  double now = 0.0;
  std::uint64_t fired = 0;
  std::size_t high_water = 0;
  std::vector<EventId> open;  // candidates for cancellation (may be stale)

  while (q.scheduled_count() < kTotal) {
    const std::size_t burst = 1 + rng.below(8);
    for (std::size_t i = 0; i < burst && q.scheduled_count() < kTotal; ++i) {
      open.push_back(q.schedule(now + rng.uniform(0.0, 10.0), [&] { ++fired; }));
    }
    high_water = std::max(high_water, q.pending());
    while (q.pending() > kMaxPending ||
           (q.pending() > 0 && rng.chance(0.3))) {
      if (!open.empty() && rng.chance(0.5)) {
        const std::size_t pick = rng.below(open.size());
        q.cancel(open[pick]);  // may be stale already; then it's a no-op
        open[pick] = open.back();
        open.pop_back();
      } else {
        now = q.pop_and_run();
      }
    }
    if (open.size() > 4 * kMaxPending) {
      open.erase(open.begin(), open.end() - 2 * kMaxPending);
    }
  }
  while (!q.empty()) now = q.pop_and_run();

  EXPECT_EQ(q.scheduled_count(), kTotal);
  EXPECT_LE(high_water, kMaxPending + 8);
  // The headline assertion: slab capacity tracks the high-water pending
  // count, within a small constant — NOT the 1e6 lifetime schedules.
  EXPECT_LE(q.slab_capacity(), high_water + 8);
  // Heap storage (including lazily-dropped cancelled entries) is bounded by
  // a small multiple of the high-water mark thanks to compaction.
  EXPECT_LE(q.heap_size(), 2 * high_water + 130);
  EXPECT_GT(fired, 0u);
  EXPECT_EQ(q.pending(), 0u);
}

// Pure schedule+cancel churn (nothing ever pops): the pathological case for
// the heap, since cancelled entries only leave via compaction.
TEST(EventQueue, CancelChurnKeepsHeapBounded) {
  EventQueue q;
  util::Rng rng(42);
  std::size_t high_water = 0;
  std::vector<EventId> open;
  for (int i = 0; i < 200'000; ++i) {
    open.push_back(q.schedule(rng.uniform(0.0, 1.0), [] {}));
    high_water = std::max(high_water, q.pending());
    if (open.size() > 64) {
      const std::size_t pick = rng.below(open.size());
      EXPECT_TRUE(q.cancel(open[pick]));
      open[pick] = open.back();
      open.pop_back();
    }
  }
  EXPECT_LE(q.slab_capacity(), high_water + 8);
  EXPECT_LE(q.heap_size(), 2 * high_water + 130);
}

}  // namespace
}  // namespace crusader::sim
