#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace crusader::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule(5.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  const EventId early = q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] {
    order.push_back(1);
    q.schedule(2.0, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PendingCount) {
  EventQueue q;
  EXPECT_EQ(q.pending(), 0u);
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, EmptyPopThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop_and_run(), util::CheckFailure);
}

TEST(EventQueue, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1.0, EventFn{}), util::CheckFailure);
}

}  // namespace
}  // namespace crusader::sim
