#include "crypto/sha256.hpp"

#include <cstddef>
#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace crusader::crypto {
namespace {

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, Nist896BitMessage) {
  // FIPS 180-4 896-bit test message (112 bytes — pads to two blocks), from
  // the NIST example suite for SHA-256.
  EXPECT_EQ(to_hex(Sha256::hash(std::string{
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"})),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, NistCavpShortMessages) {
  // NIST CAVP SHA256ShortMsg.rsp byte-oriented vectors (Len = 8 and 32).
  EXPECT_EQ(to_hex(Sha256::hash(std::string{"\xbd"})),
            "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b");
  EXPECT_EQ(to_hex(Sha256::hash(std::string{"\xc9\x8c\x8e\x55"})),
            "7abc22c0ae5af26ce93dbb94433a0e0b2e119d014f8e7f65bd56c61ccccd9504");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes == one full block; padding then occupies a second block.
  const std::string m(64, 'x');
  EXPECT_EQ(Sha256::hash(m), Sha256::hash(m));
  EXPECT_NE(Sha256::hash(m), Sha256::hash(std::string(63, 'x')));
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "the quick brown fox jumps over the lazy dog, repeatedly and with vigor";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 ctx;
    ctx.update(msg.substr(0, split));
    ctx.update(msg.substr(split));
    EXPECT_EQ(ctx.finalize(), Sha256::hash(msg)) << "split at " << split;
  }
}

TEST(Sha256, LengthExtensionOfPaddingBoundary) {
  // 55 and 56 input bytes straddle the one-vs-two padding block boundary.
  const std::string a(55, 'p');
  const std::string b(56, 'p');
  EXPECT_NE(Sha256::hash(a), Sha256::hash(b));
}

TEST(Sha256, HexEncoding) {
  Digest d{};
  d[0] = 0x00;
  d[1] = 0xff;
  d[31] = 0x5a;
  const std::string hex = to_hex(d);
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(hex.substr(0, 4), "00ff");
  EXPECT_EQ(hex.substr(62, 2), "5a");
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  std::vector<std::string> inputs = {"", "a", "b", "ab", "ba", "aa", "abc"};
  for (std::size_t i = 0; i < inputs.size(); ++i)
    for (std::size_t j = i + 1; j < inputs.size(); ++j)
      EXPECT_NE(Sha256::hash(inputs[i]), Sha256::hash(inputs[j]))
          << inputs[i] << " vs " << inputs[j];
}

}  // namespace
}  // namespace crusader::crypto
